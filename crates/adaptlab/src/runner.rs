//! Multi-trial failure sweeps: the engine behind Fig. 7 and Figs. 10–16.
//!
//! For each failure level, fail a random node subset of the baseline
//! environment, let every policy replan, and score the target states.
//! Results are averaged over trials with distinct seeds (the paper uses 5).
//!
//! Trials are fully independent — each builds its own environment from
//! its own seed — so [`failure_sweep`] fans them out across the
//! [`phoenix_exec`] pool and reduces the per-trial metric grids strictly
//! in trial order. The averaged output is **byte-identical for every
//! thread count** (see the tests; wall-clock `plan_secs` is the one
//! field that is never reproducible, threaded or not).

use phoenix_cluster::failure::{fail_fraction, fail_zones};
use phoenix_core::policies::ResiliencePolicy;
use phoenix_exec::Pool;
use rand::rngs::StdRng;
use rand::SeedableRng;

use serde::{Deserialize, Serialize};

use crate::metrics::{evaluate, revenue, SchemeMetrics};
use crate::scenario::{build_env, EnvConfig};

/// Averaged metrics for one `(policy, failure level)` cell.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepPoint {
    /// Policy display name.
    pub policy: String,
    /// Fraction of cluster capacity failed (0.0–0.9).
    pub failure_frac: f64,
    /// Metrics averaged across trials.
    pub metrics: SchemeMetrics,
}

impl SweepPoint {
    /// Bitwise equality on everything except wall-clock planning time
    /// (see [`SchemeMetrics::same_results`]): the form of "identical"
    /// that thread counts are required to preserve.
    pub fn same_results(&self, other: &SweepPoint) -> bool {
        self.policy == other.policy
            && self.failure_frac.to_bits() == other.failure_frac.to_bits()
            && self.metrics.same_results(&other.metrics)
    }
}

/// How victims are chosen at each failure level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FailureModel {
    /// Uniformly random nodes (the paper's sweeps).
    #[default]
    Random,
    /// Whole zones at a time (rack/PDU blast radius), with the given zone
    /// count striped over node ids.
    Zoned {
        /// Number of zones in the cluster.
        zones: usize,
    },
}

/// Sweep configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepConfig {
    /// Failure levels to test (e.g. `[0.1, 0.2, …, 0.9]`).
    pub failure_fracs: Vec<f64>,
    /// Number of independent trials (seeds); the paper averages 5.
    /// `0` is clamped to one trial.
    pub trials: u32,
    /// Victim selection model.
    pub failure_model: FailureModel,
}

impl SweepConfig {
    /// The effective trial count: `trials` clamped to at least one, as
    /// `usize`. Every consumer (loop bound, seed offset, averaging
    /// divisor) derives from this single clamp.
    pub fn effective_trials(&self) -> usize {
        self.trials.max(1) as usize
    }
}

impl Default for SweepConfig {
    fn default() -> SweepConfig {
        SweepConfig {
            failure_fracs: (1..=9).map(|i| i as f64 / 10.0).collect(),
            trials: 5,
            failure_model: FailureModel::Random,
        }
    }
}

/// Runs the sweep; returns one [`SweepPoint`] per `(policy, level)`,
/// policies varying fastest. Trials fan out across the
/// [global pool](phoenix_exec::global) (`PHOENIX_THREADS`); see
/// [`failure_sweep_on`] to pin a pool explicitly.
pub fn failure_sweep(
    env_cfg: &EnvConfig,
    sweep: &SweepConfig,
    policies: &[Box<dyn ResiliencePolicy>],
) -> Vec<SweepPoint> {
    failure_sweep_on(env_cfg, sweep, policies, phoenix_exec::global())
}

/// One trial's metric grid: exactly one [`SchemeMetrics`] per
/// `(failure level, policy)` cell.
fn sweep_trial(
    env_cfg: &EnvConfig,
    sweep: &SweepConfig,
    policies: &[Box<dyn ResiliencePolicy>],
    trial: usize,
) -> Vec<SchemeMetrics> {
    let mut cfg = env_cfg.clone();
    cfg.seed = env_cfg.seed.wrapping_add(trial as u64);
    let mut env = build_env(&cfg);
    let baseline_revenue = revenue(&env.workload, &env.baseline);
    let mut grid = Vec::with_capacity(sweep.failure_fracs.len() * policies.len());

    // Snapshot the pristine baseline once; every failure level rewinds to
    // it in O(mutations) instead of deep-cloning the whole state. The
    // restore is bit-exact (same `used` bits, same iteration order), so
    // the grid is byte-identical to the historical clone-per-level loop.
    let pristine = env.baseline.snapshot();
    for (fi, &frac) in sweep.failure_fracs.iter().enumerate() {
        env.baseline.restore_to(&pristine);
        let mut rng = StdRng::seed_from_u64(cfg.seed.wrapping_mul(31).wrapping_add(fi as u64));
        match sweep.failure_model {
            FailureModel::Random => {
                fail_fraction(&mut env.baseline, frac, &mut rng);
            }
            FailureModel::Zoned { zones } => {
                fail_zones(&mut env.baseline, zones.max(1), frac, &mut rng);
            }
        }

        for policy in policies {
            let plan = policy.plan(&env.workload, &env.baseline);
            grid.push(evaluate(
                &env.workload,
                &plan.target,
                baseline_revenue,
                plan.planning_time.as_secs_f64(),
            ));
        }
    }
    grid
}

/// [`failure_sweep`] on an explicit [`Pool`].
///
/// Each trial is seeded independently and runs on its own environment,
/// so the only cross-trial step is the accumulation — which always folds
/// the per-trial grids in trial order, reproducing the sequential
/// accumulation bit for bit.
pub fn failure_sweep_on(
    env_cfg: &EnvConfig,
    sweep: &SweepConfig,
    policies: &[Box<dyn ResiliencePolicy>],
    pool: &Pool,
) -> Vec<SweepPoint> {
    let cells = sweep.failure_fracs.len() * policies.len();
    let trials = sweep.effective_trials();
    let grids = pool.par_map_range_chunked(trials, 1, |trial| {
        phoenix_obs::global().incr(phoenix_obs::Counter::SweepTrials);
        sweep_trial(env_cfg, sweep, policies, trial)
    });

    let mut acc: Vec<SchemeMetrics> = vec![SchemeMetrics::default(); cells];
    for grid in grids {
        for (cell, m) in acc.iter_mut().zip(grid) {
            cell.availability += m.availability;
            cell.revenue += m.revenue;
            cell.fairness_pos += m.fairness_pos;
            cell.fairness_neg += m.fairness_neg;
            cell.utilization += m.utilization;
            cell.plan_secs += m.plan_secs;
        }
    }

    let t = trials as f64;
    sweep
        .failure_fracs
        .iter()
        .enumerate()
        .flat_map(|(fi, &frac)| {
            policies
                .iter()
                .enumerate()
                .map(move |(pi, p)| (fi, frac, pi, p))
        })
        .map(|(fi, frac, pi, policy)| {
            let m = acc[fi * policies.len() + pi];
            SweepPoint {
                policy: policy.name().to_string(),
                failure_frac: frac,
                metrics: SchemeMetrics {
                    availability: m.availability / t,
                    revenue: m.revenue / t,
                    fairness_pos: m.fairness_pos / t,
                    fairness_neg: m.fairness_neg / t,
                    utilization: m.utilization / t,
                    plan_secs: m.plan_secs / t,
                },
            }
        })
        .collect()
}

/// One `(scenario, policy)` cell of a [`scripted_sweep`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScriptedPoint {
    /// Scenario name.
    pub scenario: String,
    /// Scenario family slug.
    pub family: String,
    /// Policy display name.
    pub policy: String,
    /// Metrics of the policy's plan against the scenario's worst moment.
    pub metrics: SchemeMetrics,
}

/// Plans-only sweep over a generated scenario suite: for each scenario,
/// reconstruct its **peak concurrent outage** — the instant with the most
/// effective capacity lost, replaying stop/start, zone/rack, flap, and
/// gray-degrade events — apply that state (plus any demand surges that
/// landed before it) to the baseline environment, and score every policy.
///
/// Where [`failure_sweep`] draws random victims per degree, this reuses
/// the `phoenix-scenarios` family generators, so the planner is graded
/// against *shaped* trouble (cascades, blast radii, aging) with zero new
/// randomness: the suite fully determines the sweep.
///
/// Runs on the [global pool](phoenix_exec::global); see
/// [`scripted_sweep_on`] to pin a pool explicitly.
///
/// # Errors
///
/// Propagates suite validation errors before planning anything.
pub fn scripted_sweep(
    env_cfg: &EnvConfig,
    suite: &phoenix_scenarios::model::SuiteDoc,
    policies: &[Box<dyn ResiliencePolicy>],
) -> Result<Vec<ScriptedPoint>, phoenix_scenarios::model::ScenarioError> {
    scripted_sweep_on(env_cfg, suite, policies, phoenix_exec::global())
}

/// [`scripted_sweep`] on an explicit [`Pool`]: scenarios fan out and the
/// result grid is collected in suite order (policies varying fastest), so
/// the sweep is byte-identical for every thread count.
///
/// # Errors
///
/// As [`scripted_sweep`].
pub fn scripted_sweep_on(
    env_cfg: &EnvConfig,
    suite: &phoenix_scenarios::model::SuiteDoc,
    policies: &[Box<dyn ResiliencePolicy>],
    pool: &Pool,
) -> Result<Vec<ScriptedPoint>, phoenix_scenarios::model::ScenarioError> {
    suite.validate()?;
    let env = build_env(env_cfg);
    let grids = pool.par_map(&suite.scenarios, |doc| {
        let (failed, workload) = peak_outage_state(&env, doc);
        let baseline_revenue = revenue(&workload, &env.baseline);
        policies
            .iter()
            .map(|policy| {
                let plan = policy.plan(&workload, &failed);
                ScriptedPoint {
                    scenario: doc.name.clone(),
                    family: doc.family.clone(),
                    policy: policy.name().to_string(),
                    metrics: evaluate(
                        &workload,
                        &plan.target,
                        baseline_revenue,
                        plan.planning_time.as_secs_f64(),
                    ),
                }
            })
            .collect::<Vec<ScriptedPoint>>()
    });
    Ok(grids.into_iter().flatten().collect())
}

/// Replays `doc`'s script over the baseline cluster and returns the state
/// at the moment of maximal effective-capacity loss, together with the
/// workload as surged up to that moment. Scenario node ids beyond the
/// environment's cluster are ignored; zone/rack membership is computed
/// over the environment's own node count (the suite should be generated
/// with `nodes == env.nodes` for full fidelity).
fn peak_outage_state(
    env: &crate::scenario::AdaptLabEnv,
    doc: &phoenix_scenarios::model::ScenarioDoc,
) -> (phoenix_cluster::ClusterState, phoenix_core::spec::Workload) {
    use phoenix_kubesim::scenario::{rack_members, zone_members};

    let n = env.baseline.node_count();
    let node_cap = |i: usize| {
        env.baseline
            .capacity(phoenix_cluster::NodeId::new(i as u32))
    };
    let mut events: Vec<&phoenix_scenarios::model::EventDoc> = doc.events.iter().collect();
    events.sort_by_key(|e| e.at_ms);

    // One outage-script step: applies `ev` to the per-node down/degrade
    // vectors (shared by the forward scan and the best-prefix replay, so
    // the two can never disagree).
    let apply = |ev: &phoenix_scenarios::model::EventDoc, down: &mut [bool], factor: &mut [f64]| {
        let ids: Vec<u32> = match ev.kind.as_str() {
            "zone_outage" | "zone_restore" => zone_members(n, ev.zones, ev.zone),
            "rack_outage" | "rack_restore" => rack_members(n, ev.zones, ev.zone),
            _ => ev.nodes.clone(),
        };
        let ids = ids.into_iter().filter(|&i| (i as usize) < n);
        match ev.kind.as_str() {
            // Flap groups count as down at their start (the pessimistic
            // reading: the sweep grades the worst instant).
            "kubelet_stop" | "zone_outage" | "rack_outage" | "flap" => {
                ids.for_each(|i| down[i as usize] = true);
            }
            "kubelet_start" | "zone_restore" | "rack_restore" => {
                ids.for_each(|i| down[i as usize] = false);
            }
            "capacity_degrade" => {
                let f = ev.factor.clamp(0.0, 1.0);
                ids.for_each(|i| factor[i as usize] = f);
            }
            "capacity_restore" => {
                ids.for_each(|i| factor[i as usize] = 1.0);
            }
            _ => {}
        }
    };

    let mut down = vec![false; n];
    let mut factor = vec![1.0f64; n];
    let mut best_loss = -1.0f64;
    let mut best_at = 0u64;
    // Length of the event prefix producing the peak — tracking the index
    // replaces the per-hit `down`/`factor` vector clones the scan used to
    // make (the `>=` below fires on *every* equal-loss event).
    let mut best_prefix = 0usize;
    for (ei, ev) in events.iter().enumerate() {
        apply(ev, &mut down, &mut factor);
        let loss: f64 = (0..n)
            .map(|i| {
                let cap = node_cap(i).scalar();
                if down[i] {
                    cap
                } else {
                    cap * (1.0 - factor[i])
                }
            })
            .sum();
        // `>=`: among equal-loss instants keep the **latest**, so events
        // that do not move capacity — above all a demand surge landing
        // while the hole is still open — advance `best_at` and are
        // included in the graded moment. (A surge-under-crunch scenario
        // peaks at its stop event; the surge arrives later at unchanged
        // loss, and grading the pre-surge workload would measure nothing
        // beyond a plain crunch.)
        if loss >= best_loss {
            best_loss = loss;
            best_at = ev.at_ms;
            best_prefix = ei + 1;
        }
    }
    // Re-derive the peak's node state by replaying the winning prefix —
    // the same `apply` steps, so bit-identical to the scan's view there.
    let mut best_down = vec![false; n];
    let mut best_factor = vec![1.0f64; n];
    for ev in &events[..best_prefix] {
        apply(ev, &mut best_down, &mut best_factor);
    }

    let mut failed = env.baseline.clone();
    for i in 0..n {
        let node = phoenix_cluster::NodeId::new(i as u32);
        if best_down[i] {
            failed.fail_node(node);
        } else if best_factor[i] != 1.0 {
            failed.set_degrade(node, best_factor[i]);
        }
    }
    let mut workload = env.workload.clone();
    for ev in events {
        if ev.kind == "demand_surge" && ev.at_ms <= best_at {
            if (ev.app as usize) < workload.app_count() {
                workload.scale_app(
                    phoenix_core::spec::AppId::new(ev.app),
                    ev.demand_factor,
                    ev.replica_factor,
                );
            }
        }
    }
    (failed, workload)
}

/// Serializes sweep results to pretty JSON (for plotting pipelines).
///
/// # Errors
///
/// Returns the underlying `serde_json` error on failure (cannot happen
/// for valid points).
pub fn to_json(points: &[SweepPoint]) -> Result<String, serde_json::Error> {
    serde_json::to_string_pretty(points)
}

/// Restores sweep results from JSON.
///
/// # Errors
///
/// Returns the underlying `serde_json` error on malformed input.
pub fn from_json(json: &str) -> Result<Vec<SweepPoint>, serde_json::Error> {
    serde_json::from_str(json)
}

/// Convenience accessor: the point for `(policy, frac)`.
pub fn point<'a>(points: &'a [SweepPoint], policy: &str, frac: f64) -> Option<&'a SweepPoint> {
    points
        .iter()
        .find(|p| p.policy == policy && (p.failure_frac - frac).abs() < 1e-9)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alibaba::AlibabaConfig;
    use crate::resources::ResourceModel;
    use crate::tagging::TaggingScheme;
    use phoenix_core::policies::{DefaultPolicy, FairPolicy, PhoenixPolicy, PriorityPolicy};

    fn quick_env() -> EnvConfig {
        EnvConfig {
            nodes: 40,
            node_capacity: 64.0,
            target_utilization: 0.7,
            resource_model: ResourceModel::CallsPerMinute,
            tagging: TaggingScheme::ServiceLevel { percentile: 0.9 },
            alibaba: AlibabaConfig {
                apps: 5,
                max_services: 80,
                max_requests: 40_000.0,
                ..AlibabaConfig::default()
            },
            seed: 3,
        }
    }

    fn roster() -> Vec<Box<dyn ResiliencePolicy>> {
        vec![
            Box::new(PhoenixPolicy::cost()),
            Box::new(PhoenixPolicy::fair()),
            Box::new(PriorityPolicy::default()),
            Box::new(FairPolicy::default()),
            Box::new(DefaultPolicy),
        ]
    }

    #[test]
    fn sweep_shapes_match_the_paper() {
        let points = failure_sweep(
            &quick_env(),
            &SweepConfig {
                failure_fracs: vec![0.1, 0.5, 0.8],
                trials: 2,
                ..SweepConfig::default()
            },
            &roster(),
        );
        assert_eq!(points.len(), 15);

        // Availability decreases with failure severity for every policy.
        for name in ["PhoenixCost", "PhoenixFair", "Priority", "Fair", "Default"] {
            let a = point(&points, name, 0.1).unwrap().metrics.availability;
            let c = point(&points, name, 0.8).unwrap().metrics.availability;
            assert!(a >= c - 1e-9, "{name}: {a} vs {c}");
        }

        // The paper's headline: Phoenix beats the non-cooperative baselines
        // at moderate-to-heavy failure levels.
        for frac in [0.5, 0.8] {
            let phx = point(&points, "PhoenixFair", frac)
                .unwrap()
                .metrics
                .availability
                .max(
                    point(&points, "PhoenixCost", frac)
                        .unwrap()
                        .metrics
                        .availability,
                );
            let dfl = point(&points, "Default", frac)
                .unwrap()
                .metrics
                .availability;
            assert!(phx >= dfl, "frac {frac}: Phoenix {phx} < Default {dfl}");
        }

        // PhoenixCost maximizes revenue among the roster at 50 %.
        let rev = |n: &str| point(&points, n, 0.5).unwrap().metrics.revenue;
        assert!(rev("PhoenixCost") + 1e-9 >= rev("Fair"));
        assert!(rev("PhoenixCost") + 1e-9 >= rev("Default"));

        // PhoenixFair has the smallest total fairness deviation.
        let dev = |n: &str| {
            let m = point(&points, n, 0.5).unwrap().metrics;
            m.fairness_pos + m.fairness_neg
        };
        for n in ["Priority", "Default"] {
            assert!(
                dev("PhoenixFair") <= dev(n) + 1e-9,
                "PhoenixFair dev {} vs {n} {}",
                dev("PhoenixFair"),
                dev(n)
            );
        }
    }

    #[test]
    fn zoned_failures_run_and_phoenix_still_leads() {
        let points = failure_sweep(
            &quick_env(),
            &SweepConfig {
                failure_fracs: vec![0.5],
                trials: 1,
                failure_model: FailureModel::Zoned { zones: 8 },
            },
            &roster(),
        );
        let phx = point(&points, "PhoenixFair", 0.5)
            .unwrap()
            .metrics
            .availability;
        let dfl = point(&points, "Default", 0.5).unwrap().metrics.availability;
        assert!(phx >= dfl, "zoned: {phx} < {dfl}");
    }

    #[test]
    fn sweep_is_thread_count_invariant() {
        // Everything except wall-clock plan_secs must be byte-identical
        // between a sequential and an oversubscribed parallel run.
        let cfg = SweepConfig {
            failure_fracs: vec![0.2, 0.6],
            trials: 3,
            ..SweepConfig::default()
        };
        let seq = failure_sweep_on(&quick_env(), &cfg, &roster(), &Pool::sequential());
        let par = failure_sweep_on(&quick_env(), &cfg, &roster(), &Pool::new(4));
        assert_eq!(seq.len(), par.len());
        for (a, b) in seq.iter().zip(&par) {
            assert!(
                a.same_results(b),
                "{} @ {}: {:?} vs {:?}",
                a.policy,
                a.failure_frac,
                a.metrics,
                b.metrics
            );
        }
    }

    #[test]
    fn zero_trials_clamps_to_one() {
        let cfg = SweepConfig {
            failure_fracs: vec![0.5],
            trials: 0,
            ..SweepConfig::default()
        };
        assert_eq!(cfg.effective_trials(), 1);
        let points = failure_sweep(
            &quick_env(),
            &cfg,
            &[Box::new(PhoenixPolicy::fair()) as Box<dyn ResiliencePolicy>],
        );
        assert_eq!(points.len(), 1);
        assert!(points[0].metrics.availability.is_finite());
    }

    #[test]
    fn sweep_results_round_trip_through_json() {
        let points = failure_sweep(
            &quick_env(),
            &SweepConfig {
                failure_fracs: vec![0.5],
                trials: 1,
                ..SweepConfig::default()
            },
            &[Box::new(PhoenixPolicy::fair()) as Box<dyn ResiliencePolicy>],
        );
        let json = to_json(&points).unwrap();
        let restored = from_json(&json).unwrap();
        assert_eq!(points, restored);
    }

    #[test]
    fn scripted_sweep_reuses_scenario_families_deterministically() {
        use phoenix_scenarios::generate::{generate_suite, Family, GeneratorConfig};
        let suite = generate_suite(&GeneratorConfig {
            nodes: 40,
            node_cpu: 64.0,
            scenarios_per_family: 1,
            apps: 5,
            seed: 3,
        });
        let points = scripted_sweep(&quick_env(), &suite, &roster()).unwrap();
        assert_eq!(points.len(), suite.scenarios.len() * roster().len());
        // Grid order: scenarios in suite order, policies varying fastest.
        assert_eq!(points[0].scenario, suite.scenarios[0].name);
        assert_eq!(points[0].policy, "PhoenixCost");
        for f in Family::all() {
            assert!(
                points.iter().any(|p| p.family == f.slug()),
                "{} missing",
                f.slug()
            );
        }
        // Thread-count invariance, modulo wall-clock.
        let seq = scripted_sweep_on(&quick_env(), &suite, &roster(), &Pool::sequential()).unwrap();
        let par = scripted_sweep_on(&quick_env(), &suite, &roster(), &Pool::new(4)).unwrap();
        for (a, b) in seq.iter().zip(&par) {
            assert_eq!(a.scenario, b.scenario);
            assert!(
                a.metrics.same_results(&b.metrics),
                "{} under {} diverged",
                a.scenario,
                a.policy
            );
        }
        // Phoenix keeps critical availability at least at Default's level
        // across the whole shaped sweep.
        let avg = |name: &str| {
            let (s, c) = points
                .iter()
                .filter(|p| p.policy == name)
                .fold((0.0, 0u32), |(s, c), p| (s + p.metrics.availability, c + 1));
            s / f64::from(c.max(1))
        };
        assert!(avg("PhoenixFair") >= avg("Default") - 1e-9);
    }

    #[test]
    fn scripted_sweep_rejects_invalid_suites() {
        use phoenix_scenarios::generate::{generate_suite, GeneratorConfig};
        let mut suite = generate_suite(&GeneratorConfig::default());
        suite.scenarios[0].events[0].kind = "meteor_strike".into();
        assert!(scripted_sweep(&quick_env(), &suite, &roster()).is_err());
    }

    #[test]
    fn zero_failure_keeps_full_availability_for_phoenix() {
        let points = failure_sweep(
            &quick_env(),
            &SweepConfig {
                failure_fracs: vec![0.0],
                trials: 1,
                ..SweepConfig::default()
            },
            &[Box::new(PhoenixPolicy::fair()) as Box<dyn ResiliencePolicy>],
        );
        assert!((points[0].metrics.availability - 1.0).abs() < 1e-9);
        assert!((points[0].metrics.revenue - 1.0).abs() < 1e-9);
    }
}
