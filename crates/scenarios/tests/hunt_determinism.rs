//! The adversarial hunt's determinism contract: a hunt is a pure
//! function of its seed, and its output — champions, severities, rounds,
//! the full JSON — is byte-identical whether the `(candidate, policy)`
//! evaluations fan out over 1 or 4 pool workers.

use phoenix_core::policies::{DefaultPolicy, PhoenixPolicy, ResiliencePolicy};
use phoenix_exec::Pool;
use phoenix_scenarios::campaign::{demo_workload, CampaignConfig};
use phoenix_scenarios::search::{run_hunt_with, HuntConfig};

fn roster() -> Vec<Box<dyn ResiliencePolicy>> {
    vec![
        Box::new(PhoenixPolicy::cost()),
        Box::new(PhoenixPolicy::fair()),
        Box::new(DefaultPolicy),
    ]
}

#[test]
fn hunts_are_pool_invariant_and_byte_identical() {
    // Small but real: 2 mutation rounds over a 12-candidate population.
    let hunt = HuntConfig {
        population: 12,
        rounds: 2,
        elites: 4,
        ..HuntConfig::smoke(42)
    };
    let w = demo_workload(3);
    let cfg = CampaignConfig::default();
    let seq = run_hunt_with(&w, &roster(), &hunt, &cfg, &Pool::sequential(), None);
    let par = run_hunt_with(&w, &roster(), &hunt, &cfg, &Pool::new(4), None);

    assert_eq!(seq, par, "hunt output varies with pool width");
    let a = serde_json::to_string_pretty(&seq).unwrap();
    let b = serde_json::to_string_pretty(&par).unwrap();
    assert_eq!(a, b, "hunt JSON varies with pool width");

    // The smoke-seed hunt must find real violations (acceptance
    // criterion: the known BENCH_planner baselines are rediscoverable).
    assert!(!seq.champions.is_empty(), "seed-42 hunt found nothing");
    for c in &seq.champions {
        assert!(c.signature.severity_ms > 0);
        c.doc.validate().unwrap();
    }
}

#[test]
fn secondary_objective_stays_pool_invariant() {
    let hunt = HuntConfig {
        population: 10,
        rounds: 1,
        elites: 4,
        ..HuntConfig::smoke(7)
    };
    let w = demo_workload(3);
    let cfg = CampaignConfig::default();
    let secondary = |d: &phoenix_scenarios::model::ScenarioDoc| d.events.len() as u64;
    let seq = run_hunt_with(
        &w,
        &roster(),
        &hunt,
        &cfg,
        &Pool::sequential(),
        Some(&secondary),
    );
    let par = run_hunt_with(&w, &roster(), &hunt, &cfg, &Pool::new(4), Some(&secondary));
    assert_eq!(seq, par);
    assert_eq!(
        serde_json::to_string_pretty(&seq).unwrap(),
        serde_json::to_string_pretty(&par).unwrap()
    );
}
