//! Determinism probe: emits every class of parallelised output — cold
//! plans, warm replans over a churn scenario, sharded-packing churn
//! rounds, a kubesim node-failure run, a multi-trial AdaptLab sweep,
//! a fixed-seed scenario campaign (every family × 5 scenarios, plus the
//! scripted adaptlab sweep), serving-mode planning over the modal demo
//! workload with its utility-under-crunch campaign metrics, an
//! adversarial hunt with shrinking and the persisted-regression replay,
//! a chaos audit, a snapshot/restore + steady-replay check, and the
//! deterministic-plane observability counters — with all wall-clock
//! fields stripped.
//!
//! The CI determinism job runs this binary twice (`PHOENIX_THREADS=1`
//! and `PHOENIX_THREADS=4`) and diffs the outputs byte-for-byte; any
//! nondeterminism introduced into the `phoenix-exec` fan-outs shows up
//! as a diff here before it can corrupt a paper figure. `--threads N`
//! overrides the environment variable.

use phoenix_adaptlab::alibaba::AlibabaConfig;
use phoenix_adaptlab::resources::ResourceModel;
use phoenix_adaptlab::runner::{failure_sweep, SweepConfig};
use phoenix_adaptlab::scenario::EnvConfig;
use phoenix_adaptlab::tagging::TaggingScheme;
use phoenix_apps::hotel::{hotel, HotelVariant};
use phoenix_apps::overleaf::{overleaf, OverleafVariant};
use phoenix_bench::init_threads;
use phoenix_chaos::node_chaos::{node_chaos, NodeChaosConfig};
use phoenix_chaos::{audit_tags, ChaosConfig};
use phoenix_cluster::{ClusterState, NodeId, Resources};
use phoenix_core::controller::{PhoenixConfig, PhoenixController};
use phoenix_core::objectives::ObjectiveKind;
use phoenix_core::policies::standard_roster;
use phoenix_core::replan::ReplanDelta;
use phoenix_core::spec::{AppSpecBuilder, Workload};
use phoenix_core::tags::Criticality;

/// A deterministic mixed workload (graphs, flat apps, uneven replicas).
fn churn_workload() -> Workload {
    let mut apps = Vec::new();
    for a in 0..6u64 {
        let mut b = AppSpecBuilder::new(format!("app{a}"));
        let n = 3 + (a % 4) as usize;
        let ids: Vec<_> = (0..n)
            .map(|s| {
                b.add_service(
                    format!("s{s}"),
                    Resources::cpu(1.0 + ((s as u64) % 3) as f64),
                    Some(Criticality::new(1 + ((s as u64 * 7 + a) % 5) as u8)),
                    1 + ((s as u64 + a) % 2) as u16,
                )
            })
            .collect();
        if a % 2 == 0 {
            for w in ids.windows(2) {
                b.add_dependency(w[0], w[1]);
            }
        }
        b.price_per_unit(1.0 + (a % 3) as f64);
        apps.push(b.build().expect("valid probe spec"));
    }
    Workload::new(apps)
}

/// Cold + warm churn rounds: prints the action plan and activation list
/// of every round (both go through the pooled app-rank / fingerprint
/// paths).
fn probe_churn() {
    for kind in [ObjectiveKind::Fairness, ObjectiveKind::Cost] {
        let mut controller =
            PhoenixController::new(churn_workload(), PhoenixConfig::with_objective(kind));
        let mut live = ClusterState::homogeneous(8, Resources::cpu(4.0));
        for round in 0..6 {
            let result = controller.replan(&live, ReplanDelta::Full);
            let (d, m, s) = result.actions.counts();
            println!("churn {kind:?} round {round}: actions d={d} m={m} s={s}");
            for item in &result.rank.items {
                println!(
                    "  rank app={} svc={} demand={}",
                    item.app.index(),
                    item.service.index(),
                    item.demand.scalar()
                );
            }
            let mut placed: Vec<_> = result
                .target
                .assignments()
                .map(|(p, n, _)| (p, n.index()))
                .collect();
            placed.sort_unstable();
            for (pod, node) in placed {
                println!("  pod {pod} -> node {node}");
            }
            live = result.target.clone();
            match round {
                0 => {
                    live.fail_node(NodeId::new(0));
                }
                1 => {
                    live.fail_node(NodeId::new(1));
                    live.fail_node(NodeId::new(2));
                }
                2 => {
                    live.restore_node(NodeId::new(0));
                }
                _ => {
                    live.restore_node(NodeId::new(1));
                }
            }
        }
    }
}

/// Sharded-packing churn rounds: the same workload as [`probe_churn`]
/// with the packing stage fanned out over node shards on the global
/// pool. Every round is also asserted in-process against an unsharded
/// reference controller — the CI diff then guarantees the sharded merge
/// is additionally thread-count-invariant.
fn probe_sharded() {
    let mut sharded_cfg = PhoenixConfig::with_objective(ObjectiveKind::Fairness);
    sharded_cfg.packing.shards = 3;
    let mut sharded = PhoenixController::new(churn_workload(), sharded_cfg);
    let mut reference = PhoenixController::new(
        churn_workload(),
        PhoenixConfig::with_objective(ObjectiveKind::Fairness),
    );
    let mut live = ClusterState::homogeneous(8, Resources::cpu(4.0));
    for round in 0..6 {
        let result = sharded.replan(&live, ReplanDelta::Full);
        let unsharded = reference.replan(&live, ReplanDelta::Full);
        assert_eq!(
            result.actions, unsharded.actions,
            "sharded/unsharded divergence in round {round}"
        );
        let (d, m, s) = result.actions.counts();
        println!("sharded round {round}: actions d={d} m={m} s={s}");
        let mut placed: Vec<_> = result
            .target
            .assignments()
            .map(|(p, n, _)| (p, n.index()))
            .collect();
        placed.sort_unstable();
        for (pod, node) in placed {
            println!("  pod {pod} -> node {node}");
        }
        live = result.target.clone();
        match round {
            0 => {
                live.fail_node(NodeId::new(0));
            }
            1 => {
                live.fail_node(NodeId::new(1));
                live.fail_node(NodeId::new(2));
            }
            2 => {
                live.restore_node(NodeId::new(0));
            }
            _ => {
                live.restore_node(NodeId::new(1));
            }
        }
    }
}

/// Kubesim node-failure sweep (the chaos crate's simulated control
/// plane) — every field here is simulated time, not wall-clock.
fn probe_kubesim() {
    let model = overleaf("overleaf", OverleafVariant::Edits, 1.0);
    for policy in standard_roster() {
        let outcomes = node_chaos(&model, policy.as_ref(), &NodeChaosConfig::default());
        for o in outcomes {
            println!(
                "kubesim {} frac={:.2} utility={} recovered={} restore={:?}",
                policy.name(),
                o.failure_frac,
                o.settled_utility.to_bits(),
                o.critical_recovered,
                o.critical_restore_after,
            );
        }
    }
}

/// Multi-trial AdaptLab failure sweep; `plan_secs` (wall-clock) is the
/// one field deliberately omitted.
fn probe_sweep() {
    let env = EnvConfig {
        nodes: 40,
        node_capacity: 64.0,
        target_utilization: 0.7,
        resource_model: ResourceModel::CallsPerMinute,
        tagging: TaggingScheme::ServiceLevel { percentile: 0.9 },
        alibaba: AlibabaConfig {
            apps: 5,
            max_services: 80,
            max_requests: 40_000.0,
            ..AlibabaConfig::default()
        },
        seed: 3,
    };
    let sweep = SweepConfig {
        failure_fracs: vec![0.1, 0.5, 0.8],
        trials: 3,
        ..SweepConfig::default()
    };
    for p in failure_sweep(&env, &sweep, &standard_roster()) {
        println!(
            "sweep {} frac={:.1} avail={} rev={} fair+={} fair-={} util={}",
            p.policy,
            p.failure_frac,
            p.metrics.availability.to_bits(),
            p.metrics.revenue.to_bits(),
            p.metrics.fairness_pos.to_bits(),
            p.metrics.fairness_neg.to_bits(),
            p.metrics.utilization.to_bits(),
        );
    }
}

/// Fixed-seed scenario campaign: every generated family × 5 scenarios
/// through the campaign runner (and the scripted adaptlab sweep), with
/// every float printed as bits and wall-clock omitted. This is the CI
/// guarantee behind the scenario engine: `PHOENIX_THREADS` moves only
/// wall-clock, never a scorecard byte.
fn probe_scenarios() {
    use phoenix_core::policies::{DefaultPolicy, PhoenixPolicy, ResiliencePolicy};
    use phoenix_scenarios::campaign::{demo_workload, run_campaign, CampaignConfig};
    use phoenix_scenarios::generate::{generate_suite, GeneratorConfig};

    let suite = generate_suite(&GeneratorConfig {
        nodes: 8,
        node_cpu: 4.0,
        scenarios_per_family: 5,
        apps: 3,
        seed: 42,
    });
    let policies: Vec<Box<dyn ResiliencePolicy>> =
        vec![Box::new(PhoenixPolicy::fair()), Box::new(DefaultPolicy)];
    let outcome = run_campaign(
        &demo_workload(3),
        &suite,
        &policies,
        &CampaignConfig::default(),
    )
    .expect("generated suite is valid");
    for s in &outcome.scores {
        println!(
            "scenario {} {} rto={} outages={} viol={} min={} final={} c1={:?} plans={}",
            s.scenario,
            s.policy,
            s.rto_satisfied,
            s.outages,
            s.violations,
            s.min_availability.to_bits(),
            s.final_availability.to_bits(),
            s.worst_c1_recovery_ms,
            s.plans,
        );
    }
    for c in &outcome.scorecards {
        println!(
            "scorecard {} {} n={} pass={} viol={} min={} final={} c1={:?}",
            c.family,
            c.policy,
            c.scenarios,
            c.rto_pass,
            c.violations,
            c.mean_min_availability.to_bits(),
            c.mean_final_availability.to_bits(),
            c.worst_c1_recovery_ms,
        );
    }

    // The scripted plans-only sweep over the same families.
    let env = EnvConfig {
        nodes: 40,
        node_capacity: 64.0,
        target_utilization: 0.7,
        resource_model: ResourceModel::CallsPerMinute,
        tagging: TaggingScheme::ServiceLevel { percentile: 0.9 },
        alibaba: AlibabaConfig {
            apps: 5,
            max_services: 80,
            max_requests: 40_000.0,
            ..AlibabaConfig::default()
        },
        seed: 3,
    };
    let scripted_suite = generate_suite(&GeneratorConfig {
        nodes: 40,
        node_cpu: 64.0,
        scenarios_per_family: 1,
        apps: 5,
        seed: 3,
    });
    for p in phoenix_adaptlab::runner::scripted_sweep(&env, &scripted_suite, &standard_roster())
        .expect("generated suite is valid")
    {
        println!(
            "scripted {} {} avail={} rev={} fair+={} fair-={} util={}",
            p.scenario,
            p.policy,
            p.metrics.availability.to_bits(),
            p.metrics.revenue.to_bits(),
            p.metrics.fairness_pos.to_bits(),
            p.metrics.fairness_neg.to_bits(),
            p.metrics.utilization.to_bits(),
        );
    }
}

/// Serving-mode planning: churn rounds over the modal demo workload
/// (degraded-serving ladders on cache/batch) under a crunch, printing
/// every chosen mode, the ModeShift action counts, and the modal
/// campaign's utility metrics as bits. The CI diff extends the
/// thread-count-invariance guarantee to mode selection and
/// utility-under-crunch scoring.
fn probe_modes() {
    use phoenix_core::policies::{PhoenixPolicy, ResiliencePolicy};
    use phoenix_scenarios::campaign::{demo_workload_modal, run_campaign, CampaignConfig};
    use phoenix_scenarios::generate::{generate_suite, GeneratorConfig};

    let workload = demo_workload_modal(3);
    let mut controller = PhoenixController::new(
        workload.clone(),
        PhoenixConfig::with_objective(ObjectiveKind::Fairness),
    );
    let mut live = ClusterState::homogeneous(6, Resources::cpu(4.0));
    for round in 0..5 {
        let result = controller.replan(&live, ReplanDelta::Full);
        let (d, m, s) = result.actions.counts();
        println!(
            "modes round {round}: actions d={d} m={m} s={s} shifts={} all_full={}",
            result.actions.mode_shifts(),
            result.modes.is_all_full(),
        );
        for (app, spec) in workload.apps() {
            for svc in 0..spec.service_count() {
                let svc = phoenix_core::spec::ServiceId::new(svc as u32);
                let mode = result.modes.get(app, svc);
                if mode != phoenix_core::spec::ServingMode::Full {
                    println!("  mode app={} svc={} {mode:?}", app.index(), svc.index());
                }
            }
        }
        let mut placed: Vec<_> = result
            .target
            .assignments()
            .map(|(p, n, r)| (p, n.index(), r.scalar().to_bits()))
            .collect();
        placed.sort_unstable();
        for (pod, node, demand) in placed {
            println!("  pod {pod} -> node {node} demand={demand}");
        }
        live = result.target.clone();
        match round {
            0 => {
                live.fail_node(NodeId::new(0));
            }
            1 => {
                live.fail_node(NodeId::new(1));
            }
            2 => {
                live.restore_node(NodeId::new(0));
            }
            _ => {
                live.restore_node(NodeId::new(1));
            }
        }
    }

    // The modal campaign: utility-under-crunch metrics, as bits.
    let suite = generate_suite(&GeneratorConfig {
        nodes: 8,
        node_cpu: 4.0,
        scenarios_per_family: 2,
        apps: 3,
        seed: 42,
    });
    let policies: Vec<Box<dyn ResiliencePolicy>> = vec![Box::new(PhoenixPolicy::fair())];
    let outcome = run_campaign(&workload, &suite, &policies, &CampaignConfig::default())
        .expect("generated suite is valid");
    for s in &outcome.scores {
        println!(
            "modal scenario {} {} min_u={} final_u={}",
            s.scenario,
            s.policy,
            s.min_utility.to_bits(),
            s.final_utility.to_bits(),
        );
    }
    for c in &outcome.scorecards {
        println!(
            "modal scorecard {} {} mean_min_u={} mean_final_u={}",
            c.family,
            c.policy,
            c.mean_min_utility.to_bits(),
            c.mean_final_utility.to_bits(),
        );
    }
}

/// Adversarial hunt + shrink + regression replay: a small fixed-seed
/// hunt fans `(candidate, policy)` evaluations over the pool, the
/// champion shrinks through the deterministic lattice, and every
/// checked-in repro replays — all printed with wall-clock omitted, so
/// the CI diff proves the whole adversarial pipeline is thread-count
/// invariant.
fn probe_hunt() {
    use phoenix_core::policies::{DefaultPolicy, PhoenixPolicy, ResiliencePolicy};
    use phoenix_scenarios::campaign::{demo_workload, CampaignConfig};
    use phoenix_scenarios::model::ScenarioDoc;
    use phoenix_scenarios::regression::{load_all, regressions_dir, replay};
    use phoenix_scenarios::search::{run_hunt, signature_of, HuntConfig};
    use phoenix_scenarios::shrink::shrink;

    let hunt = HuntConfig {
        population: 12,
        rounds: 2,
        elites: 4,
        ..HuntConfig::smoke(42)
    };
    let w = demo_workload(3);
    let cfg = CampaignConfig::default();
    let policies: Vec<Box<dyn ResiliencePolicy>> =
        vec![Box::new(PhoenixPolicy::cost()), Box::new(DefaultPolicy)];
    let outcome = run_hunt(&w, &policies, &hunt, &cfg);
    println!(
        "hunt seed={} evals={} champions={}",
        outcome.seed,
        outcome.evaluations,
        outcome.champions.len()
    );
    for c in &outcome.champions {
        println!(
            "hunt champion {} round={} candidate={} severity={} outages={} viol={} c1={:?}",
            c.policy,
            c.round,
            c.candidate,
            c.signature.severity_ms,
            c.signature.outages,
            c.signature.violations,
            c.signature.worst_c1_recovery_ms,
        );
        let policy = policies
            .iter()
            .find(|p| p.name() == c.policy)
            .expect("champion policy from roster");
        let mut oracle = |d: &ScenarioDoc| {
            signature_of(&w, d, policy.as_ref(), &cfg)
                .map(|s| s.severity_ms > 0)
                .unwrap_or(false)
        };
        let (small, report) = shrink(&c.doc, &mut oracle);
        let sig = signature_of(&w, &small, policy.as_ref(), &cfg).expect("shrunk doc validates");
        println!(
            "hunt shrunk {} events={}->{} horizon={}->{} severity={} evals={} passes={}",
            c.policy,
            c.doc.events.len(),
            small.events.len(),
            c.doc.horizon_ms,
            small.horizon_ms,
            sig.severity_ms,
            report.evals,
            report.passes,
        );
    }
    for doc in load_all(&regressions_dir()).expect("regressions dir readable") {
        let fresh = replay(&doc, &cfg).expect("repro replays");
        println!(
            "regression {} pinned={} fresh={} outages={} viol={} c1={:?}",
            doc.name,
            doc.signature.severity_ms,
            fresh.severity_ms,
            fresh.outages,
            fresh.violations,
            fresh.worst_c1_recovery_ms,
        );
    }
}

/// Snapshot/restore and steady-replay determinism: journaled-arena churn
/// must rewind bit-exactly (same `used` bits, same iteration order), and
/// a campaign cell replayed from a captured [`SteadyState`] must match
/// the cold simulation byte for byte. Both are asserted in-process *and*
/// printed, so the 1-vs-4-thread CI diff extends to the clone-free trial
/// paths (`failure_sweep` restores, campaign/hunt steady replays).
///
/// [`SteadyState`]: phoenix_kubesim::run::SteadyState
fn probe_snapshot() {
    use phoenix_core::policies::{DefaultPolicy, PhoenixPolicy, ResiliencePolicy};
    use phoenix_kubesim::run::{simulate, simulate_from, SimConfig, SteadyState};
    use phoenix_scenarios::campaign::demo_workload;
    use phoenix_scenarios::generate::{generate_suite, GeneratorConfig};

    // 1. Journal rewind under churn across every mutation class.
    let mut state = ClusterState::homogeneous(12, Resources::cpu(8.0));
    for i in 0..10u32 {
        state
            .assign(
                phoenix_cluster::PodKey::new(i / 4, i % 4, 0),
                Resources::cpu(1.0 + f64::from(i % 3)),
                NodeId::new(i % 12),
            )
            .expect("probe pods fit");
    }
    state.set_degrade(NodeId::new(11), 0.5);
    let reference = state.clone();
    let snap = state.snapshot();
    state.fail_node(NodeId::new(0));
    state.set_degrade(NodeId::new(1), 0.25);
    state
        .assign(
            phoenix_cluster::PodKey::new(9, 9, 9),
            Resources::cpu(2.0),
            NodeId::new(5),
        )
        .expect("churn pod fits");
    state.remove(phoenix_cluster::PodKey::new(1, 1, 0)).ok();
    state.restore_node(NodeId::new(0));
    state.restore_to(&snap);
    assert!(
        state.bitwise_eq(&reference),
        "restore_to drifted from the pre-churn state"
    );
    // Print assignments in iteration order — this pins the restored
    // intern order itself into the diffed output.
    for (pod, node, demand) in state.assignments() {
        println!(
            "snapshot churn pod {pod} -> node {} demand={}",
            node.index(),
            demand.scalar().to_bits()
        );
    }

    // 2. Steady-state replay vs cold simulation, per (scenario, policy).
    let suite = generate_suite(&GeneratorConfig {
        nodes: 8,
        node_cpu: 4.0,
        scenarios_per_family: 1,
        apps: 3,
        seed: 7,
    });
    let w = demo_workload(3);
    let policies: Vec<Box<dyn ResiliencePolicy>> =
        vec![Box::new(PhoenixPolicy::fair()), Box::new(DefaultPolicy)];
    let sim = SimConfig::default();
    for doc in &suite.scenarios {
        let scenario = doc.compile().expect("generated doc compiles");
        for p in &policies {
            let steady = SteadyState::compute(&w, p.as_ref(), &scenario.node_capacities);
            let cold = simulate(&w, p.as_ref(), &scenario, &sim, doc.horizon());
            let warm = simulate_from(
                &w,
                p.as_ref(),
                &scenario,
                &sim,
                doc.horizon(),
                Some(&steady),
            );
            assert_eq!(
                cold.samples,
                warm.samples,
                "steady replay diverged from cold simulate: {} under {}",
                doc.name,
                p.name()
            );
            assert_eq!(cold.milestones, warm.milestones);
            let final_u = warm.samples.last().map_or(0, |s| s.utility.to_bits());
            println!(
                "snapshot campaign {} {} samples={} milestones={} plans={} final_u={final_u}",
                doc.name,
                p.name(),
                warm.samples.len(),
                warm.milestones.len(),
                warm.plans.len(),
            );
        }
    }
}

/// Deterministic-plane observability counters: run a fixed churn-replan
/// loop plus a small fixed-seed campaign under an *enabled*
/// [`Recorder`](phoenix_obs::Recorder) and print every counter in
/// [`Counter::ALL`](phoenix_obs::Counter::ALL) order. The counters are
/// commutative sums and `max` gauges over work the planner does, never
/// over how the pool chunked it, so the printed block must be
/// byte-identical at `PHOENIX_THREADS=1` and `4` — this section is what
/// pins that contract in CI. Wall-clock histograms and spans are the
/// recorder's other plane and are deliberately absent here.
fn probe_obs() {
    use phoenix_core::policies::{DefaultPolicy, PhoenixPolicy, ResiliencePolicy};
    use phoenix_scenarios::campaign::{demo_workload_modal, run_campaign, CampaignConfig};
    use phoenix_scenarios::generate::{generate_suite, GeneratorConfig};

    let recorder = phoenix_obs::Recorder::enabled();
    let _installed = phoenix_obs::install_scoped(recorder.clone());

    // Planner-side counters: cold plan + warm replans across both replan
    // delta classes (cache hits/misses, rank replays, waterfill, packing,
    // snapshot journal churn).
    let mut controller = PhoenixController::new(
        churn_workload(),
        PhoenixConfig::with_objective(ObjectiveKind::Fairness),
    );
    let mut live = ClusterState::homogeneous(8, Resources::cpu(4.0));
    for round in 0..4 {
        let delta = if round % 2 == 0 {
            ReplanDelta::Full
        } else {
            ReplanDelta::CapacityOnly
        };
        let result = controller.replan(&live, delta);
        live = result.target.clone();
        if round == 1 {
            live.fail_node(NodeId::new(round));
        }
    }

    // Simulator/campaign counters: events, milestones, mode shifts,
    // per-cell fan-out. Default config ⇒ sequential packing (`shards: 0`),
    // so no pool-shape-derived quantity ever reaches a counter.
    let suite = generate_suite(&GeneratorConfig {
        nodes: 8,
        node_cpu: 4.0,
        scenarios_per_family: 1,
        apps: 2,
        seed: 11,
    });
    let policies: Vec<Box<dyn ResiliencePolicy>> =
        vec![Box::new(PhoenixPolicy::fair()), Box::new(DefaultPolicy)];
    run_campaign(
        &demo_workload_modal(2),
        &suite,
        &policies,
        &CampaignConfig::default(),
    )
    .expect("generated suite is valid");

    // Sweep counters: per-trial fan-out plus the journaled
    // snapshot/restore churn its clone-free trials ride on.
    let env = EnvConfig {
        nodes: 12,
        node_capacity: 64.0,
        target_utilization: 0.7,
        resource_model: ResourceModel::CallsPerMinute,
        tagging: TaggingScheme::ServiceLevel { percentile: 0.9 },
        alibaba: AlibabaConfig {
            apps: 3,
            max_services: 20,
            max_requests: 10_000.0,
            ..AlibabaConfig::default()
        },
        seed: 5,
    };
    let sweep = SweepConfig {
        failure_fracs: vec![0.5],
        trials: 2,
        ..SweepConfig::default()
    };
    std::hint::black_box(failure_sweep(&env, &sweep, &standard_roster()).len());

    for (name, value) in recorder.counters() {
        println!("obs {name}={value}");
    }
}

/// Chaos tag audits for both reference applications.
fn probe_audit() {
    for model in [
        overleaf("overleaf", OverleafVariant::Edits, 1.0),
        hotel("hr", HotelVariant::Reserve, 1.0),
    ] {
        let report = audit_tags(&model, &ChaosConfig::default());
        for d in &report.degrees {
            println!(
                "audit {} degree={:.2} retained={} utility={} killed={:?}",
                report.app,
                d.degree,
                d.critical_retained,
                d.utility_score.to_bits(),
                d.killed,
            );
        }
        for v in &report.violations {
            println!(
                "audit {} violation svc={} tag={} breaks={}",
                report.app, v.service, v.tag, v.broken_request
            );
        }
    }
}

fn main() {
    let threads = init_threads();
    // The thread count itself must NOT be printed into the diffed body —
    // report it on stderr only.
    eprintln!("determinism probe on {threads} thread(s)");
    probe_churn();
    probe_sharded();
    probe_kubesim();
    probe_sweep();
    probe_scenarios();
    probe_modes();
    probe_hunt();
    probe_audit();
    // Sections are append-only: older golden outputs stay a strict
    // byte-prefix of the new output.
    probe_snapshot();
    probe_obs();
}
