//! Global Ranking (Algorithm 1, `GetGlobalRank`): merge per-application
//! activation orders into one cluster-wide list under an operator
//! objective, stopping at the aggregate capacity.
//!
//! A priority queue holds at most one candidate per application — the app's
//! next-most-critical unactivated container. Each round pops the candidate
//! with the best operator score, deducts its demand from the remaining
//! aggregate capacity, and enqueues that app's next container.

use std::collections::BinaryHeap;

use phoenix_cluster::Resources;

use crate::objectives::{OperatorObjective, RankContext};
use crate::planner::PlannerConfig;
use crate::spec::{AppId, ServiceId, ServingMode, Workload};
use crate::waterfill::{demand_order, waterfill_with_order};

/// One entry of the global activation list: a `(service, mode)` candidate.
///
/// A service without a mode table contributes exactly one `Full` item
/// carrying its whole demand — the pre-modes representation. A service
/// *with* a table contributes a ladder of items, most-degraded rung
/// first: the base item activates the service at its cheapest mode and
/// each later item upgrades it one mode, carrying only the **marginal**
/// demand of that step. Under capacity crunch the merge cuts the ladder
/// mid-way, so the planner steps a replica down a mode instead of
/// evicting it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GlobalRankItem {
    /// Application.
    pub app: AppId,
    /// Microservice within the application.
    pub service: ServiceId,
    /// Demand this item adds across all replicas: the full mode-less
    /// demand for a plain service, the marginal upgrade demand for a
    /// mode-ladder rung.
    pub demand: Resources,
    /// The serving mode this item activates (or upgrades) the service to;
    /// always [`ServingMode::Full`] for mode-less services.
    pub mode: ServingMode,
}

/// Output of global ranking, including fair-share bookkeeping that the
/// metrics layer reuses.
#[derive(Debug, Clone, Default)]
pub struct GlobalRank {
    /// Activation list, best first.
    pub items: Vec<GlobalRankItem>,
    /// Water-filling fair share per app (scalar), indexed by app id.
    pub fair_shares: Vec<f64>,
    /// Scalar resources granted per app by this ranking.
    pub allocated: Vec<f64>,
}

#[derive(Debug, PartialEq)]
struct HeapEntry {
    score: f64,
    app: AppId,
    pos: usize,
}

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &HeapEntry) -> std::cmp::Ordering {
        // Max-heap on score; deterministic tie-break on app id (smaller id
        // first ⇒ reversed comparison inside the max-heap). `total_cmp`
        // keeps the order total even for NaN scores from a degenerate
        // operator objective: NaN ranks above +∞, never panics.
        self.score
            .total_cmp(&other.score)
            .then_with(|| other.app.cmp(&self.app))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &HeapEntry) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// One candidate of one app's activation chain, with every fact the merge
/// loop reads flattened out of the [`Workload`].
#[derive(Debug, Clone, Copy)]
struct ChainEntry {
    service: ServiceId,
    /// Marginal demand of this rung across replicas (the whole service
    /// demand for mode-less entries).
    demand: Resources,
    scalar: f64,
    criticality: crate::tags::Criticality,
    /// Mode this rung activates/upgrades the service to.
    mode: ServingMode,
    /// Marginal utility weight of this rung across replicas (`replicas ×
    /// 1.0` for mode-less entries).
    utility: f64,
}

/// Precomputed inputs to global ranking: the per-app activation chains from
/// [`crate::planner::app_rank`] with demands, tags, and prices resolved
/// into dense arrays.
///
/// Cold planning builds this per round; warm replanning
/// ([`crate::replan`]) caches it across rounds keyed by app fingerprints.
/// Both paths feed the same merge loop, so their outputs are identical by
/// construction.
#[derive(Debug, Clone, Default)]
pub struct RankInputs {
    chains: Vec<Vec<ChainEntry>>,
    prices: Vec<f64>,
    demand_scalars: Vec<f64>,
    demand_sort: Vec<usize>,
}

impl RankInputs {
    /// Flattens `app_ranks` against `workload`.
    ///
    /// # Panics
    ///
    /// Panics if `app_ranks.len()` differs from the workload's app count.
    pub fn new(workload: &Workload, app_ranks: &[Vec<ServiceId>]) -> RankInputs {
        assert_eq!(
            app_ranks.len(),
            workload.app_count(),
            "one rank list per app required"
        );
        let chains: Vec<Vec<ChainEntry>> = workload
            .apps()
            .zip(app_ranks)
            .map(|((_, app), rank)| {
                rank.iter()
                    .flat_map(|&service| {
                        let svc = app.service(service);
                        let criticality = app.criticality_of(service);
                        if !svc.has_modes() {
                            // Pre-modes representation, bit-identical: one
                            // Full entry carrying the whole demand.
                            let demand = svc.total_demand();
                            return vec![ChainEntry {
                                service,
                                demand,
                                scalar: demand.scalar(),
                                criticality,
                                mode: ServingMode::Full,
                                utility: f64::from(svc.replicas),
                            }];
                        }
                        // Mode ladder, most-degraded rung first: the base
                        // activates the cheapest mode, each later entry
                        // upgrades one rung at its marginal demand/utility.
                        let replicas = f64::from(svc.replicas);
                        svc.modes
                            .iter()
                            .enumerate()
                            .rev()
                            .map(|(i, rung)| {
                                let (d, u) = match svc.modes.get(i + 1) {
                                    Some(worse) => (
                                        rung.demand.saturating_sub(&worse.demand),
                                        rung.utility - worse.utility,
                                    ),
                                    None => (rung.demand, rung.utility),
                                };
                                let demand = d * replicas;
                                ChainEntry {
                                    service,
                                    demand,
                                    scalar: demand.scalar(),
                                    criticality,
                                    mode: rung.mode,
                                    utility: u * replicas,
                                }
                            })
                            .collect()
                    })
                    .collect()
            })
            .collect();
        let prices = workload.apps().map(|(_, a)| a.price_per_unit()).collect();
        let demand_scalars: Vec<f64> = workload
            .apps()
            .map(|(_, a)| a.total_demand().scalar())
            .collect();
        let demand_sort = demand_order(&demand_scalars);
        RankInputs {
            chains,
            prices,
            demand_scalars,
            demand_sort,
        }
    }

    /// Number of applications.
    pub fn app_count(&self) -> usize {
        self.chains.len()
    }

    /// Water-filling fair shares under `capacity` — exactly what the merge
    /// loop would compute internally (same cached sort order).
    pub fn fair_shares(&self, capacity: f64) -> Vec<f64> {
        waterfill_with_order(&self.demand_scalars, &self.demand_sort, capacity)
    }

    fn entry<O: OperatorObjective + ?Sized>(
        &self,
        objective: &O,
        fair_shares: &[f64],
        allocated: &[f64],
        app: AppId,
        pos: usize,
    ) -> Option<HeapEntry> {
        let e = self.chains[app.index()].get(pos)?;
        let score = objective.score(&RankContext {
            app,
            next_demand: e.scalar,
            allocated: allocated[app.index()],
            fair_share: fair_shares[app.index()],
            price: self.prices[app.index()],
            criticality: e.criticality,
            mode_utility: e.utility,
        });
        Some(HeapEntry { score, app, pos })
    }
}

/// Merges `app_ranks` (one activation order per app, from
/// [`crate::planner::app_rank`]) into a global list bounded by `capacity`.
///
/// # Panics
///
/// Panics if `app_ranks.len()` differs from the workload's app count.
pub fn global_rank(
    workload: &Workload,
    app_ranks: &[Vec<ServiceId>],
    objective: &dyn OperatorObjective,
    capacity: Resources,
    cfg: &PlannerConfig,
) -> GlobalRank {
    global_rank_prepared(
        &RankInputs::new(workload, app_ranks),
        objective,
        capacity,
        cfg,
    )
}

/// [`global_rank`] over prebuilt [`RankInputs`] (warm-replan entry point).
///
/// Generic over the objective so warm replanning can pass a concrete
/// built-in type and devirtualize the per-candidate `score` call; trait
/// objects (`&dyn OperatorObjective`) work unchanged.
pub fn global_rank_prepared<O: OperatorObjective + ?Sized>(
    inputs: &RankInputs,
    objective: &O,
    capacity: Resources,
    cfg: &PlannerConfig,
) -> GlobalRank {
    let n = inputs.app_count();
    let fair_shares = waterfill_with_order(
        &inputs.demand_scalars,
        &inputs.demand_sort,
        capacity.scalar(),
    );
    let mut allocated = vec![0.0; n];
    let mut remaining = capacity.scalar();
    let mut items = Vec::new();
    let obs = phoenix_obs::global();

    let mut heap: BinaryHeap<HeapEntry> = BinaryHeap::new();
    for app in 0..n as u32 {
        if let Some(e) = inputs.entry(objective, &fair_shares, &allocated, AppId::new(app), 0) {
            heap.push(e);
        }
    }

    while let Some(HeapEntry { app, pos, .. }) = heap.pop() {
        let e = inputs.chains[app.index()][pos];
        if e.scalar <= remaining + 1e-9 {
            remaining -= e.scalar;
            allocated[app.index()] += e.scalar;
            if e.mode != ServingMode::Full {
                // A degraded rung bought under crunch.
                obs.incr(phoenix_obs::Counter::RungPurchases);
            }
            items.push(GlobalRankItem {
                app,
                service: e.service,
                demand: e.demand,
                mode: e.mode,
            });
            if let Some(e) = inputs.entry(objective, &fair_shares, &allocated, app, pos + 1) {
                heap.push(e);
            }
        } else if cfg.continue_on_saturation {
            // Retire only this app's chain; other apps keep ranking.
            obs.incr(phoenix_obs::Counter::ChainRetirements);
            continue;
        } else {
            // Algorithm 1 line 29: stop at the first container that no
            // longer fits the aggregate capacity.
            break;
        }
    }

    GlobalRank {
        items,
        fair_shares,
        allocated,
    }
}

/// The capacity-independent pop order of the merge heap for a
/// [capacity-invariant](OperatorObjective::capacity_invariant) objective:
/// every `(app, chain position)` candidate in the order the heap would
/// consider it with unbounded capacity. Computed once per fingerprint
/// epoch by the warm-replan cache and replayed by
/// [`global_rank_replay`] under any capacity.
pub fn merged_order<O: OperatorObjective + ?Sized>(
    inputs: &RankInputs,
    objective: &O,
) -> Vec<(u32, u32)> {
    debug_assert!(
        objective.capacity_invariant(),
        "capacity-free merge order requires a capacity-invariant objective"
    );
    // Fair shares are irrelevant by contract; feed ones.
    merged_order_with(inputs, objective, &vec![1.0; inputs.app_count()])
}

/// The unbounded-capacity pop order of the merge heap under **fixed fair
/// shares** — valid for *any* objective, including capacity-sensitive
/// ones.
///
/// Sound because a candidate's score is static per `(app, position)` once
/// the shares are fixed: `allocated` at scoring time is always the app's
/// chain-prefix demand sum, which does not depend on capacity or on the
/// other apps. [`global_rank_replay`] may replay this order for any round
/// whose water-filling shares are bit-identical to `fair_shares` — the
/// common case when total demand fits the degraded capacity, where shares
/// equal demands regardless of the exact node count.
pub fn merged_order_with<O: OperatorObjective + ?Sized>(
    inputs: &RankInputs,
    objective: &O,
    fair_shares: &[f64],
) -> Vec<(u32, u32)> {
    let n = inputs.app_count();
    let mut allocated = vec![0.0; n];
    let mut order = Vec::with_capacity(inputs.chains.iter().map(Vec::len).sum());
    let mut heap: BinaryHeap<HeapEntry> = BinaryHeap::new();
    for app in 0..n as u32 {
        if let Some(e) = inputs.entry(objective, fair_shares, &allocated, AppId::new(app), 0) {
            heap.push(e);
        }
    }
    while let Some(HeapEntry { app, pos, .. }) = heap.pop() {
        order.push((app.index() as u32, pos as u32));
        allocated[app.index()] += inputs.chains[app.index()][pos].scalar;
        if let Some(e) = inputs.entry(objective, fair_shares, &allocated, app, pos + 1) {
            heap.push(e);
        }
    }
    order
}

/// Replays a cached [`merged_order`] under a (possibly different) capacity:
/// the warm-start path of global ranking for capacity-invariant objectives.
///
/// Produces output identical to [`global_rank_prepared`] with the same
/// inputs — chains whose head no longer fits retire exactly as the heap
/// would retire them — but does no scoring and no heap operations: one
/// linear pass over the cached order.
pub fn global_rank_replay(
    inputs: &RankInputs,
    merge_order: &[(u32, u32)],
    capacity: Resources,
    cfg: &PlannerConfig,
) -> GlobalRank {
    let n = inputs.app_count();
    let fair_shares = waterfill_with_order(
        &inputs.demand_scalars,
        &inputs.demand_sort,
        capacity.scalar(),
    );
    let mut allocated = vec![0.0; n];
    let mut remaining = capacity.scalar();
    let mut items = Vec::new();
    let mut retired = vec![false; n];
    let obs = phoenix_obs::global();
    for &(app, pos) in merge_order {
        if retired[app as usize] {
            continue;
        }
        let e = inputs.chains[app as usize][pos as usize];
        if e.scalar <= remaining + 1e-9 {
            remaining -= e.scalar;
            allocated[app as usize] += e.scalar;
            if e.mode != ServingMode::Full {
                obs.incr(phoenix_obs::Counter::RungPurchases);
            }
            items.push(GlobalRankItem {
                app: AppId::new(app),
                service: e.service,
                demand: e.demand,
                mode: e.mode,
            });
        } else if cfg.continue_on_saturation {
            obs.incr(phoenix_obs::Counter::ChainRetirements);
            retired[app as usize] = true;
        } else {
            break;
        }
    }
    GlobalRank {
        items,
        fair_shares,
        allocated,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objectives::{CostObjective, FairnessObjective};
    use crate::planner::{app_rank, Traversal};
    use crate::spec::AppSpecBuilder;
    use crate::tags::Criticality;

    /// Two flat apps: app0 with 3×1-CPU services at price 1, app1 with
    /// 3×1-CPU services at price 5.
    fn two_apps() -> Workload {
        let mut apps = Vec::new();
        for (name, price) in [("cheap", 1.0), ("premium", 5.0)] {
            let mut b = AppSpecBuilder::new(name);
            for i in 0..3 {
                b.add_service(
                    format!("s{i}"),
                    Resources::cpu(1.0),
                    Some(Criticality::new(i + 1)),
                    1,
                );
            }
            b.price_per_unit(price);
            apps.push(b.build().unwrap());
        }
        Workload::new(apps)
    }

    fn ranks(w: &Workload) -> Vec<Vec<ServiceId>> {
        w.apps()
            .map(|(_, a)| app_rank(a, Traversal::CriticalityGuidedDfs))
            .collect()
    }

    #[test]
    fn cost_objective_prioritizes_premium_app() {
        let w = two_apps();
        let gr = global_rank(
            &w,
            &ranks(&w),
            &CostObjective,
            Resources::cpu(4.0),
            &PlannerConfig::default(),
        );
        assert_eq!(gr.items.len(), 4);
        // All three premium services first, then one cheap one.
        let apps: Vec<usize> = gr.items.iter().map(|i| i.app.index()).collect();
        assert_eq!(apps, vec![1, 1, 1, 0]);
        assert_eq!(gr.allocated, vec![1.0, 3.0]);
    }

    #[test]
    fn fairness_objective_alternates_apps() {
        let w = two_apps();
        let gr = global_rank(
            &w,
            &ranks(&w),
            &FairnessObjective,
            Resources::cpu(4.0),
            &PlannerConfig::default(),
        );
        assert_eq!(gr.allocated, vec![2.0, 2.0]);
        // Within each app, criticality order is preserved.
        let app0: Vec<usize> = gr
            .items
            .iter()
            .filter(|i| i.app.index() == 0)
            .map(|i| i.service.index())
            .collect();
        assert_eq!(app0, vec![0, 1]);
    }

    #[test]
    fn full_capacity_activates_everything() {
        let w = two_apps();
        let gr = global_rank(
            &w,
            &ranks(&w),
            &FairnessObjective,
            Resources::cpu(100.0),
            &PlannerConfig::default(),
        );
        assert_eq!(gr.items.len(), 6);
    }

    #[test]
    fn break_vs_continue_on_saturation() {
        // app0 has one huge service then a tiny one; app1 has tiny services.
        let mut b0 = AppSpecBuilder::new("big");
        b0.add_service("huge", Resources::cpu(10.0), Some(Criticality::C1), 1);
        b0.add_service("tiny", Resources::cpu(0.5), Some(Criticality::C2), 1);
        b0.price_per_unit(100.0); // cost objective puts "huge" first
        let mut b1 = AppSpecBuilder::new("small");
        b1.add_service("a", Resources::cpu(1.0), Some(Criticality::C1), 1);
        b1.add_service("b", Resources::cpu(1.0), Some(Criticality::C2), 1);
        let w = Workload::new(vec![b0.build().unwrap(), b1.build().unwrap()]);

        // Capacity 3: "huge" (10) never fits.
        let strict = global_rank(
            &w,
            &ranks(&w),
            &CostObjective,
            Resources::cpu(3.0),
            &PlannerConfig::default(),
        );
        // Paper semantics: break immediately → nothing activated.
        assert!(strict.items.is_empty());

        let relaxed = global_rank(
            &w,
            &ranks(&w),
            &CostObjective,
            Resources::cpu(3.0),
            &PlannerConfig {
                continue_on_saturation: true,
                ..PlannerConfig::default()
            },
        );
        // app0's chain retires at "huge" (its tiny C2 must not jump the
        // queue), but app1 activates fully.
        assert_eq!(relaxed.items.len(), 2);
        assert!(relaxed.items.iter().all(|i| i.app.index() == 1));
    }

    #[test]
    fn replicas_count_toward_demand() {
        let mut b = AppSpecBuilder::new("r");
        b.add_service("s", Resources::cpu(1.0), Some(Criticality::C1), 3);
        let w = Workload::new(vec![b.build().unwrap()]);
        let gr = global_rank(
            &w,
            &ranks(&w),
            &CostObjective,
            Resources::cpu(2.0),
            &PlannerConfig::default(),
        );
        // 3 replicas à 1 CPU don't fit in 2 → nothing activated.
        assert!(gr.items.is_empty());
    }

    #[test]
    fn deterministic_tie_break_by_app_id() {
        let w = two_apps();
        // Same price for both → cost objective ties everywhere.
        let gr = global_rank(
            &w,
            &ranks(&w),
            &CostObjective,
            Resources::cpu(2.0),
            &PlannerConfig::default(),
        );
        // premium has higher price so it wins; instead build a tie workload:
        let mut apps = Vec::new();
        for name in ["x", "y"] {
            let mut b = AppSpecBuilder::new(name);
            b.add_service("s", Resources::cpu(1.0), Some(Criticality::C1), 1);
            apps.push(b.build().unwrap());
        }
        let tied = Workload::new(apps);
        let gr2 = global_rank(
            &tied,
            &ranks(&tied),
            &CostObjective,
            Resources::cpu(1.0),
            &PlannerConfig::default(),
        );
        assert_eq!(gr2.items[0].app.index(), 0);
        drop(gr);
    }
}
