//! Scenario-matrix campaign: generate the full scenario-family suite at a
//! fixed seed, fan it over the `phoenix-exec` pool against the policy
//! roster, and print one scorecard row per `(family, policy)` cell.
//!
//! Flags:
//!
//! * `--smoke`     small suite (8 nodes, 5 scenarios/family) that finishes
//!   in seconds — the shape CI and `BENCH_planner.json` record;
//! * `--full`      wider suite (16 nodes, 8 scenarios/family, 5 policies);
//! * `--seed N`    generator seed (default 42);
//! * `--json FILE` also write the suite + outcome as JSON;
//! * `--threads N` pool workers (byte-identical output for any value).

use std::time::Instant;

use phoenix_bench::{arg, f3, flag, init_threads, Table};
use phoenix_core::policies::{DefaultPolicy, PhoenixPolicy, ResiliencePolicy};
use phoenix_scenarios::campaign::{
    demo_workload, demo_workload_modal, run_campaign, CampaignConfig,
};
use phoenix_scenarios::generate::{generate_suite, GeneratorConfig};
use phoenix_scenarios::model;

fn main() {
    let threads = init_threads();
    let full = flag("full");
    let seed: u64 = arg("seed", 42);
    let gen_cfg = GeneratorConfig {
        nodes: if full { 16 } else { 8 },
        node_cpu: 4.0,
        scenarios_per_family: if full { 8 } else { 5 },
        apps: 3,
        seed,
    };
    let suite = generate_suite(&gen_cfg);
    let workload = demo_workload(gen_cfg.apps);
    let policies: Vec<Box<dyn ResiliencePolicy>> = if full {
        phoenix_core::policies::standard_roster()
    } else {
        vec![
            Box::new(PhoenixPolicy::fair()),
            Box::new(PhoenixPolicy::cost()),
            Box::new(DefaultPolicy),
        ]
    };

    println!(
        "scenario matrix: {} scenarios ({} families x {}), {} policies, {} nodes, seed {seed}, {threads} thread(s)",
        suite.scenarios.len(),
        phoenix_scenarios::generate::Family::all().len(),
        gen_cfg.scenarios_per_family,
        policies.len(),
        gen_cfg.nodes,
    );

    let start = Instant::now();
    let outcome = run_campaign(&workload, &suite, &policies, &CampaignConfig::default())
        .expect("generated suite is valid");
    let wall = start.elapsed();

    let mut table = Table::new([
        "family",
        "policy",
        "scenarios",
        "rto_pass",
        "violations",
        "min_avail",
        "final_avail",
        "min_util",
        "final_util",
        "worst_c1_recovery",
        "replan_p99",
    ]);
    for c in &outcome.scorecards {
        table.row([
            c.family.clone(),
            c.policy.clone(),
            c.scenarios.to_string(),
            c.rto_pass.to_string(),
            c.violations.to_string(),
            f3(c.mean_min_availability),
            f3(c.mean_final_availability),
            f3(c.mean_min_utility),
            f3(c.mean_final_utility),
            c.worst_c1_recovery_ms
                .map_or("-".to_string(), |ms| format!("{:.1}s", ms as f64 / 1000.0)),
            // Wall-clock plane (planner-latency SLO): varies run to run,
            // unlike every other column in this table.
            c.replan_ms_p99
                .map_or("-".to_string(), |ms| format!("{ms}ms")),
        ]);
    }
    table.print("Scenario matrix scorecards");
    println!(
        "\ncampaign wall-clock: {:.2}s ({} simulations)",
        wall.as_secs_f64(),
        outcome.scores.len()
    );

    // Utility-under-crunch: the same suite against the *modal* demo
    // workload (degraded-serving ladders on cache/batch, identical Full
    // demands), PhoenixFair only — the per-family gain over binary
    // place/evict is the paper's cooperative-degradation claim in one
    // table, and BENCH_planner.json records it.
    let modal_policies: Vec<Box<dyn ResiliencePolicy>> = vec![Box::new(PhoenixPolicy::fair())];
    let modal_outcome = run_campaign(
        &demo_workload_modal(gen_cfg.apps),
        &suite,
        &modal_policies,
        &CampaignConfig::default(),
    )
    .expect("generated suite is valid");
    let mut modal_table = Table::new(["family", "binary_min_util", "modal_min_util", "gain"]);
    for m in &modal_outcome.scorecards {
        let b = outcome
            .scorecards
            .iter()
            .find(|c| c.family == m.family && c.policy == m.policy)
            .expect("same suite, same policy");
        modal_table.row([
            m.family.clone(),
            f3(b.mean_min_utility),
            f3(m.mean_min_utility),
            format!("{:+.3}", m.mean_min_utility - b.mean_min_utility),
        ]);
    }
    modal_table.print("Serving modes vs binary place/evict (PhoenixFair, mean min utility)");

    if let Some(path) = std::env::args()
        .collect::<Vec<_>>()
        .windows(2)
        .find(|w| w[0] == "--json")
        .map(|w| w[1].clone())
    {
        let suite_json = model::to_json(&suite).expect("suite serializes");
        let outcome_json =
            phoenix_scenarios::campaign::outcome_to_json(&outcome).expect("outcome serializes");
        let doc = format!("{{\n\"suite\": {suite_json},\n\"outcome\": {outcome_json}\n}}\n");
        std::fs::write(&path, doc).expect("write json output");
        println!("wrote {path}");
    }
}
