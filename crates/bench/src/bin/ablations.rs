//! Ablations over the design choices DESIGN.md calls out:
//!
//! * Algorithm-1 traversal: criticality-guided DFS vs. strict frontier;
//! * planner saturation: paper's `break` vs. per-app chain retirement;
//! * packing fit strategy: best-fit vs. first-fit vs. worst-fit;
//! * migration/repack step: on vs. off.

use phoenix_adaptlab::alibaba::AlibabaConfig;
use phoenix_adaptlab::metrics::{evaluate, revenue};
use phoenix_adaptlab::scenario::{build_env, EnvConfig};
use phoenix_adaptlab::tagging::TaggingScheme;
use phoenix_bench::{arg, f3, init_threads, secs, Table};
use phoenix_cluster::failure::fail_fraction;
use phoenix_cluster::packing::{FitStrategy, PackingConfig};
use phoenix_core::planner::{PlannerConfig, Traversal};
use phoenix_core::policies::{PhoenixPolicy, ResiliencePolicy};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    init_threads();
    let nodes: usize = arg("nodes", 1_000);
    // Long-tailed pod sizes on small nodes make fragmentation real, so the
    // packing and ordering knobs actually move the metrics.
    let env = build_env(&EnvConfig {
        nodes,
        node_capacity: 32.0,
        target_utilization: 0.85,
        resource_model: phoenix_adaptlab::resources::ResourceModel::LongTailed,
        tagging: TaggingScheme::ServiceLevel { percentile: 0.9 },
        alibaba: AlibabaConfig {
            max_services: 240,
            ..AlibabaConfig::default()
        },
        seed: 31,
    });
    let mut failed = env.baseline.clone();
    let mut rng = StdRng::seed_from_u64(31);
    fail_fraction(&mut failed, 0.6, &mut rng);
    let base_rev = revenue(&env.workload, &env.baseline);

    let variants: Vec<(String, PhoenixPolicy)> = vec![
        (
            "baseline (dfs, retire, best-fit, migration)".into(),
            PhoenixPolicy::fair(),
        ),
        (
            "traversal = strict frontier".into(),
            PhoenixPolicy::fair().planner_config(PlannerConfig {
                traversal: Traversal::StrictFrontier,
                continue_on_saturation: true,
            }),
        ),
        (
            "saturation = paper break".into(),
            PhoenixPolicy::fair().planner_config(PlannerConfig {
                traversal: Traversal::CriticalityGuidedDfs,
                continue_on_saturation: false,
            }),
        ),
        (
            "fit = first-fit".into(),
            PhoenixPolicy::fair().packing_config(PackingConfig {
                fit: FitStrategy::FirstFit,
                ..PackingConfig::default()
            }),
        ),
        (
            "fit = worst-fit".into(),
            PhoenixPolicy::fair().packing_config(PackingConfig {
                fit: FitStrategy::WorstFit,
                ..PackingConfig::default()
            }),
        ),
        (
            "migration off".into(),
            PhoenixPolicy::fair().packing_config(PackingConfig {
                enable_migration: false,
                ..PackingConfig::default()
            }),
        ),
    ];

    let mut t = Table::new([
        "variant",
        "availability",
        "revenue",
        "utilization",
        "plan time",
        "notes",
    ]);
    for (name, policy) in &variants {
        let plan = policy.plan(&env.workload, &failed);
        let m = evaluate(
            &env.workload,
            &plan.target,
            base_rev,
            plan.planning_time.as_secs_f64(),
        );
        t.row([
            name.clone(),
            f3(m.availability),
            f3(m.revenue),
            f3(m.utilization),
            secs(m.plan_secs),
            plan.notes.clone(),
        ]);
    }
    t.print(&format!(
        "Ablations at 60% failure, {nodes} nodes ({} apps)",
        env.workload.app_count()
    ));
}
