//! Resilience policies: Phoenix and every baseline from the evaluation
//! (§6, *Baselines*), behind one trait.
//!
//! | Policy | Criticality-aware | Operator objective | Mechanism |
//! |--------|------------------|--------------------|-----------|
//! | [`PhoenixPolicy`] (Fair/Cost) | ✓ | ✓ | planner + ranking + packing |
//! | [`LpPolicy`] (LPFair/LPCost)  | ✓ | ✓ | exact ILP (Appendix C) |
//! | [`PriorityPolicy`]            | ✓ | ✗ (no quotas) | raw criticality merge |
//! | [`FairPolicy`]                | ✗ | fairness | quota without tags |
//! | [`DefaultPolicy`]             | ✗ | ✗ | vanilla K8s rescheduling |
//! | [`NoAdaptPolicy`]             | ✗ | ✗ | nothing (the × marker in Fig. 5) |

mod default;
mod fair;
mod lp_policy;
mod phoenix;
mod priority;

use std::fmt;
use std::time::Duration;

use phoenix_cluster::ClusterState;

use crate::spec::{ModeAssignment, Workload};

pub use default::{DefaultPolicy, NoAdaptPolicy};
pub use fair::FairPolicy;
pub use lp_policy::{LpObjective, LpPlacement, LpPolicy};
pub use phoenix::PhoenixPolicy;
pub use priority::PriorityPolicy;

/// A policy's answer to a failure event: the target cluster state.
#[derive(Debug, Clone)]
pub struct PolicyPlan {
    /// Desired assignment of pods to nodes.
    pub target: ClusterState,
    /// Wall-clock time spent planning (the Fig. 8b metric).
    pub planning_time: Duration,
    /// Chosen serving mode per service. Mode-aware policies (Phoenix)
    /// fill this from the planner; baselines leave it
    /// [`empty`](ModeAssignment::empty) — everything they place serves
    /// at `Full`, the pre-modes behavior.
    pub modes: ModeAssignment,
    /// Free-form diagnostics (e.g. the LP solver status).
    pub notes: String,
}

/// A resilience management scheme that reacts to cluster state changes by
/// proposing a new target state.
pub trait ResiliencePolicy: fmt::Debug + Send + Sync {
    /// Display name used in reports ("PhoenixCost", "Default", …).
    fn name(&self) -> &'static str;

    /// Plans a target state for `workload` on the current `state`.
    ///
    /// Implementations must not mutate `state`; they work on scratch copies.
    fn plan(&self, workload: &Workload, state: &ClusterState) -> PolicyPlan;
}

/// Instantiates the full evaluation roster: PhoenixCost, PhoenixFair,
/// Priority, Fair, Default (the five large-scale schemes of Fig. 7).
pub fn standard_roster() -> Vec<Box<dyn ResiliencePolicy>> {
    vec![
        Box::new(PhoenixPolicy::cost()),
        Box::new(PhoenixPolicy::fair()),
        Box::new(PriorityPolicy::default()),
        Box::new(FairPolicy::default()),
        Box::new(DefaultPolicy),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::AppSpecBuilder;
    use crate::tags::Criticality;
    use phoenix_cluster::Resources;

    pub(crate) fn small_workload() -> Workload {
        let mut apps = Vec::new();
        for (name, price) in [("alpha", 2.0), ("beta", 1.0)] {
            let mut b = AppSpecBuilder::new(name);
            let fe = b.add_service("fe", Resources::cpu(2.0), Some(Criticality::C1), 1);
            let aux = b.add_service("aux", Resources::cpu(2.0), Some(Criticality::C3), 1);
            b.add_dependency(fe, aux);
            b.price_per_unit(price);
            apps.push(b.build().unwrap());
        }
        Workload::new(apps)
    }

    #[test]
    fn roster_has_five_schemes_with_unique_names() {
        let roster = standard_roster();
        let names: Vec<&str> = roster.iter().map(|p| p.name()).collect();
        assert_eq!(names.len(), 5);
        let mut dedup = names.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), 5);
    }

    #[test]
    fn all_policies_leave_live_state_untouched() {
        let w = small_workload();
        let state = ClusterState::homogeneous(3, Resources::cpu(4.0));
        for p in standard_roster() {
            let before = state.pod_count();
            let plan = p.plan(&w, &state);
            assert_eq!(state.pod_count(), before, "{} mutated live state", p.name());
            plan.target.check_invariants().unwrap();
        }
    }
}
