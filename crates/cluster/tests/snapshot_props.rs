//! Property tests: the mutation journal's `restore_to` contract.
//!
//! A restore must leave the state **bit-identical** to a clone taken at
//! snapshot time — same `used` bits, same degrade factors, same pod-list
//! order, same `assignments()` iteration order — across arbitrary churn
//! mixing every mutation class (`assign`, `remove`, `fail_node`,
//! `restore_node`, `set_degrade` with its eviction cascade). This is the
//! contract the clone-free sweep/campaign/hunt fan-outs lean on: if it
//! holds, replacing clone-per-trial with restore-per-trial cannot change
//! a single output byte.

use phoenix_cluster::{ClusterState, NodeId, PodKey, Resources};
use proptest::prelude::*;

/// One randomized mutation step. `sel` picks targets, `x` sizes demands
/// and degrade factors.
#[derive(Debug, Clone, Copy)]
struct Op {
    kind: u8,
    sel: usize,
    x: f64,
}

fn ops(len: std::ops::Range<usize>) -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        (0u8..6, 0usize..64, 0.05f64..4.0).prop_map(|(kind, sel, x)| Op { kind, sel, x }),
        len,
    )
}

/// Applies one op, attempting invalid mutations too (errors are part of
/// the surface — a failed `assign` must leave no journal residue).
fn apply(state: &mut ClusterState, op: Op, next_pod: &mut u32) {
    let nodes = state.node_count();
    let node = NodeId::new((op.sel % nodes) as u32);
    match op.kind {
        0 | 1 => {
            let pod = PodKey::new(0, *next_pod, 0);
            *next_pod += 1;
            // Drifty demands on purpose (not exactly representable).
            let _ = state.assign(pod, Resources::new(op.x * 0.1, op.x * 0.3), node);
        }
        2 => {
            // Remove a pod that may or may not be assigned.
            let _ = state.remove(PodKey::new(0, (op.sel as u32) % (*next_pod).max(1), 0));
        }
        3 => {
            state.fail_node(node);
        }
        4 => {
            state.restore_node(node);
        }
        _ => {
            // Factors below 1.0 trigger the eviction cascade on loaded
            // nodes; exactly 1.0 exercises the restore path.
            let factor = if op.sel % 5 == 0 { 1.0 } else { op.x / 4.0 };
            state.set_degrade(node, factor);
        }
    }
}

fn assignment_bits(state: &ClusterState) -> Vec<(PodKey, u32, u64, u64)> {
    state
        .assignments()
        .map(|(p, n, d)| (p, n.index() as u32, d.cpu.to_bits(), d.mem.to_bits()))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Churn → snapshot → more churn → restore ≡ the snapshot-time clone.
    #[test]
    fn restore_is_bit_exact_vs_clone(
        setup in ops(20..120),
        churn in ops(20..200),
        nodes in 2usize..8,
    ) {
        let mut state = ClusterState::homogeneous(nodes, Resources::new(16.0, 16.0));
        let mut next_pod = 0u32;
        for op in setup {
            apply(&mut state, op, &mut next_pod);
        }

        let reference = state.clone();
        let ref_assignments = assignment_bits(&reference);
        let snap = state.snapshot();
        for op in churn {
            apply(&mut state, op, &mut next_pod);
        }
        state.restore_to(&snap);

        prop_assert!(state.bitwise_eq(&reference), "restore drifted from clone");
        // Iteration order is part of the contract, not just contents.
        prop_assert_eq!(assignment_bits(&state), ref_assignments);
        for n in state.node_ids() {
            prop_assert_eq!(
                state.degrade_factor(n).to_bits(),
                reference.degrade_factor(n).to_bits(),
                "degrade factor drifted on {}", n
            );
        }
        state.check_invariants().unwrap();

        // The snapshot survives its own restore: a second churn/restore
        // round against the same snapshot is the per-trial loop shape.
        let mut extra = 0u32;
        apply(&mut state, Op { kind: 0, sel: 1, x: 1.5 }, &mut next_pod);
        apply(&mut state, Op { kind: 3, sel: 0, x: 1.0 }, &mut extra);
        state.restore_to(&snap);
        prop_assert!(state.bitwise_eq(&reference));
    }

    /// Nested snapshots unwind in LIFO order: restoring to the inner one
    /// recovers the inner clone, then restoring to the outer one recovers
    /// the outer clone — and the outer snapshot is still valid after the
    /// inner restore.
    #[test]
    fn nested_snapshots_unwind_in_order(
        setup in ops(10..80),
        mid in ops(10..80),
        tail in ops(10..80),
        nodes in 2usize..6,
    ) {
        let mut state = ClusterState::homogeneous(nodes, Resources::new(16.0, 16.0));
        let mut next_pod = 0u32;
        for op in setup {
            apply(&mut state, op, &mut next_pod);
        }
        let outer_ref = state.clone();
        let outer = state.snapshot();

        for op in mid {
            apply(&mut state, op, &mut next_pod);
        }
        let inner_ref = state.clone();
        let inner = state.snapshot();

        for op in tail {
            apply(&mut state, op, &mut next_pod);
        }

        state.restore_to(&inner);
        prop_assert!(state.bitwise_eq(&inner_ref), "inner restore drifted");
        state.check_invariants().unwrap();

        state.restore_to(&outer);
        prop_assert!(state.bitwise_eq(&outer_ref), "outer restore drifted");
        prop_assert_eq!(assignment_bits(&state), assignment_bits(&outer_ref));
        state.check_invariants().unwrap();
    }
}
