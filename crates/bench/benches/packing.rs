//! Criterion bench: the Algorithm-2 packing heuristic under the three fit
//! strategies (ablation for the scheduler's packing efficiency, Fig. 8c).

use criterion::{criterion_group, BenchmarkId, Criterion};
use phoenix_cluster::packing::{pack, FitStrategy, PackingConfig, PlannedPod};
use phoenix_cluster::{ClusterState, PodKey, Resources};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn plan_of(pods: usize, seed: u64) -> Vec<PlannedPod> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..pods)
        .map(|i| {
            PlannedPod::new(
                PodKey::new(0, i as u32, 0),
                Resources::cpu(rng.gen_range(0.5..8.0)),
            )
        })
        .collect()
}

fn bench_packing(c: &mut Criterion) {
    let mut group = c.benchmark_group("packing");
    group.sample_size(20);
    let plan = plan_of(2000, 3);
    for fit in [
        FitStrategy::BestFit,
        FitStrategy::FirstFit,
        FitStrategy::WorstFit,
    ] {
        group.bench_with_input(
            BenchmarkId::new("fit", format!("{fit:?}")),
            &fit,
            |b, &fit| {
                b.iter(|| {
                    let mut state = ClusterState::homogeneous(200, Resources::cpu(64.0));
                    pack(
                        &mut state,
                        &plan,
                        &PackingConfig {
                            fit,
                            ..PackingConfig::default()
                        },
                    )
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_packing);
// Expanded `criterion_main!` so the harness honours the standard
// `--threads N` flag (and `PHOENIX_THREADS`) before any group runs.
fn main() {
    phoenix_bench::init_threads();
    benches();
}
