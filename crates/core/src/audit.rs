//! Adversarial / incorrect criticality-tag auditing (§7).
//!
//! Criticality tags are self-reported: a tenant that marks *everything*
//! `C1` asks the cloud to treat its chat widget like another tenant's
//! payment path. The paper's discussion names two defences — independent
//! tag-verification tools, and operator objectives (resource fairness)
//! that bound the damage a liar can do. This module implements both sides:
//!
//! * [`audit_workload`] is the verification tool: a static scan that flags
//!   tag distributions inconsistent with a degradable application
//!   (everything-critical, single-level, or fully untagged specs).
//! * [`blast_radius`] quantifies the damage: it plans the same failure
//!   twice — once with honest tags, once with one application's tags
//!   inflated to all-`C1` — and reports who gained and who lost, measured
//!   against the *honest* tags. Under [`FairnessObjective`] the inflator's
//!   gain is bounded by its water-filling fair share (lying reorders only
//!   its own chain); under quota-free criticality ordering (the `Priority`
//!   baseline) inflation steals capacity from every honest tenant. The
//!   ablation bench `ablation_adversarial` regenerates the comparison.
//!
//! [`FairnessObjective`]: crate::objectives::FairnessObjective

use std::fmt;

use phoenix_cluster::ClusterState;

use crate::controller::{plan_with, PhoenixConfig};
use crate::ranking::GlobalRank;
use crate::spec::{AppId, AppSpec, AppSpecBuilder, ServiceId, Workload};
use crate::tags::Criticality;

/// Thresholds for the static audit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AuditConfig {
    /// Flag an app as inflated when more than this fraction of its demand
    /// claims `C1`. The paper's real deployments sit near 60 % critical
    /// (Fig. 9), so the default of 0.8 leaves honest headroom.
    pub c1_share_threshold: f64,
    /// Apps with fewer services than this are never flagged as inflated —
    /// a single-container app is legitimately all-critical.
    pub min_services: usize,
}

impl Default for AuditConfig {
    fn default() -> AuditConfig {
        AuditConfig {
            c1_share_threshold: 0.8,
            min_services: 3,
        }
    }
}

/// One suspicious pattern in an application's tags.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum Finding {
    /// More than the threshold fraction of demand claims `C1`.
    Inflated {
        /// Fraction of demand tagged (effectively) `C1`.
        share: f64,
    },
    /// Every tagged service uses one level: the tags carry no ordering
    /// information, so diagonal scaling cannot choose what to shed.
    SingleLevel {
        /// The only level in use.
        level: Criticality,
    },
    /// No service carries a tag; the app defaults to fully critical (§5)
    /// and the operator pays for capacity it could have reclaimed.
    FullyUntagged,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Finding::Inflated { share } => {
                write!(f, "{:.0}% of demand claims C1", share * 100.0)
            }
            Finding::SingleLevel { level } => write!(f, "all tags are {level}"),
            Finding::FullyUntagged => write!(f, "no criticality tags"),
        }
    }
}

/// Audit result for one application.
#[derive(Debug, Clone, PartialEq)]
pub struct AppAudit {
    /// Application id.
    pub app: AppId,
    /// Application name.
    pub name: String,
    /// Fraction of demand whose *effective* tag is `C1`.
    pub c1_demand_share: f64,
    /// Fraction of demand carrying no tag at all.
    pub untagged_share: f64,
    /// Number of distinct effective levels in use.
    pub distinct_levels: usize,
    /// Suspicious patterns, empty when the app looks healthy.
    pub findings: Vec<Finding>,
}

impl AppAudit {
    /// `true` when no finding was raised.
    pub fn clean(&self) -> bool {
        self.findings.is_empty()
    }
}

/// Audit results for a whole workload.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AuditReport {
    /// One entry per application, in workload order.
    pub apps: Vec<AppAudit>,
}

impl AuditReport {
    /// Applications with at least one finding.
    pub fn suspicious(&self) -> impl Iterator<Item = &AppAudit> {
        self.apps.iter().filter(|a| !a.clean())
    }

    /// `true` when every application is clean.
    pub fn passed(&self) -> bool {
        self.apps.iter().all(AppAudit::clean)
    }
}

/// Statically audits every application's tag distribution.
///
/// Unsubscribed apps (`phoenix_enabled(false)`) are skipped — they opted
/// out of diagonal scaling, so their tags are not load-bearing.
///
/// # Examples
///
/// ```
/// use phoenix_core::audit::{audit_workload, inflate_tags, AuditConfig};
/// use phoenix_core::spec::{AppSpecBuilder, Workload};
/// use phoenix_core::tags::Criticality;
/// use phoenix_cluster::Resources;
///
/// let mut b = AppSpecBuilder::new("shop");
/// b.add_service("fe", Resources::cpu(2.0), Some(Criticality::C1), 1);
/// b.add_service("api", Resources::cpu(2.0), Some(Criticality::C2), 1);
/// b.add_service("rec", Resources::cpu(2.0), Some(Criticality::C5), 1);
/// let honest = b.build()?;
///
/// let ok = audit_workload(&Workload::new(vec![honest.clone()]), &AuditConfig::default());
/// assert!(ok.passed());
///
/// let flagged = audit_workload(
///     &Workload::new(vec![inflate_tags(&honest)]),
///     &AuditConfig::default(),
/// );
/// assert_eq!(flagged.suspicious().count(), 1);
/// # Ok::<(), phoenix_core::spec::SpecError>(())
/// ```
pub fn audit_workload(workload: &Workload, cfg: &AuditConfig) -> AuditReport {
    let apps = workload
        .apps()
        .map(|(id, spec)| audit_app(id, spec, cfg))
        .collect();
    AuditReport { apps }
}

fn audit_app(id: AppId, spec: &AppSpec, cfg: &AuditConfig) -> AppAudit {
    let total = spec.total_demand().scalar();
    let mut c1 = 0.0;
    let mut untagged = 0.0;
    let mut levels: Vec<Criticality> = Vec::new();
    for s in spec.service_ids() {
        let svc = spec.service(s);
        let demand = svc.total_demand().scalar();
        if spec.criticality_of(s) == Criticality::C1 {
            c1 += demand;
        }
        match svc.criticality {
            None => untagged += demand,
            Some(level) => {
                if !levels.contains(&level) {
                    levels.push(level);
                }
            }
        }
    }
    let c1_demand_share = if total > 0.0 { c1 / total } else { 0.0 };
    let untagged_share = if total > 0.0 { untagged / total } else { 0.0 };
    let distinct_levels = if untagged > 0.0 {
        levels.len() + usize::from(!levels.contains(&Criticality::C1))
    } else {
        levels.len()
    };

    let mut findings = Vec::new();
    if spec.phoenix_enabled() && spec.service_count() >= cfg.min_services {
        if untagged_share >= 1.0 {
            findings.push(Finding::FullyUntagged);
        } else if c1_demand_share > cfg.c1_share_threshold {
            findings.push(Finding::Inflated {
                share: c1_demand_share,
            });
        }
        if distinct_levels == 1 && untagged_share < 1.0 {
            let level = levels.first().copied().unwrap_or_default();
            // All-C1 single-level apps are already covered by Inflated.
            if level != Criticality::C1 {
                findings.push(Finding::SingleLevel { level });
            }
        }
    }
    AppAudit {
        app: id,
        name: spec.name().to_string(),
        c1_demand_share,
        untagged_share,
        distinct_levels,
        findings,
    }
}

/// The all-`C1` adversarial transformation: the same app claiming maximal
/// criticality everywhere. Dependencies, replicas, prices, and the
/// subscription flag are preserved.
pub fn inflate_tags(spec: &AppSpec) -> AppSpec {
    let mut b = AppSpecBuilder::new(spec.name());
    for s in spec.service_ids() {
        let svc = spec.service(s);
        b.add_service(
            svc.name.clone(),
            svc.demand,
            Some(Criticality::C1),
            svc.replicas,
        );
    }
    if let Some(graph) = spec.dependency() {
        b.with_graph();
        for u in graph.node_ids() {
            for &v in graph.successors(u) {
                b.add_dependency(
                    ServiceId::new(u.index() as u32),
                    ServiceId::new(v.index() as u32),
                );
            }
        }
    }
    b.price_per_unit(spec.price_per_unit());
    b.phoenix_enabled(spec.phoenix_enabled());
    b.build().expect("a valid spec stays valid under retagging")
}

/// Outcome of the honest-vs-inflated planning comparison.
///
/// All `Vec`s are indexed by [`AppId`]; `C1` coverage is always measured
/// against the **honest** tags, so a liar's own numbers reflect what its
/// genuinely critical services received.
#[derive(Debug, Clone, PartialEq)]
pub struct BlastRadius {
    /// The application whose tags were inflated.
    pub inflator: AppId,
    /// Scalar resources granted per app with honest tags.
    pub honest_alloc: Vec<f64>,
    /// Scalar resources granted per app after the inflation.
    pub adversarial_alloc: Vec<f64>,
    /// Fraction of each app's truly-`C1` demand activated, honest run.
    pub honest_c1: Vec<f64>,
    /// Same fraction in the adversarial run (still against honest tags).
    pub adversarial_c1: Vec<f64>,
}

impl BlastRadius {
    /// Extra resources the liar obtained by inflating.
    pub fn inflator_gain(&self) -> f64 {
        self.adversarial_alloc[self.inflator.index()] - self.honest_alloc[self.inflator.index()]
    }

    /// Total resources honest applications lost.
    pub fn victim_loss(&self) -> f64 {
        self.honest_alloc
            .iter()
            .zip(&self.adversarial_alloc)
            .enumerate()
            .filter(|&(i, _)| i != self.inflator.index())
            .map(|(_, (&h, &a))| (h - a).max(0.0))
            .sum()
    }

    /// The honest application whose truly-critical coverage dropped most,
    /// with the size of the drop. `None` when no victim lost coverage.
    pub fn worst_victim(&self) -> Option<(AppId, f64)> {
        self.honest_c1
            .iter()
            .zip(&self.adversarial_c1)
            .enumerate()
            .filter(|&(i, _)| i != self.inflator.index())
            .map(|(i, (&h, &a))| (AppId::new(i as u32), h - a))
            .filter(|&(_, drop)| drop > 1e-9)
            .max_by(|a, b| a.1.total_cmp(&b.1))
    }
}

/// Plans `state` twice — honest tags vs. `inflator` claiming all-`C1` —
/// under the same controller `config`, and reports the damage.
///
/// # Panics
///
/// Panics if `inflator` is out of bounds for the workload.
pub fn blast_radius(
    workload: &Workload,
    inflator: AppId,
    state: &ClusterState,
    config: &PhoenixConfig,
) -> BlastRadius {
    let honest = plan_with(workload, state, config);

    let mut apps: Vec<AppSpec> = workload.apps().map(|(_, a)| a.clone()).collect();
    apps[inflator.index()] = inflate_tags(&apps[inflator.index()]);
    let lying = Workload::new(apps);
    let adversarial = plan_with(&lying, state, config);

    BlastRadius {
        inflator,
        honest_alloc: honest.rank.allocated.clone(),
        adversarial_alloc: adversarial.rank.allocated.clone(),
        honest_c1: c1_coverage(workload, &honest.rank),
        adversarial_c1: c1_coverage(workload, &adversarial.rank),
    }
}

/// Per-app fraction of truly-`C1` demand the ranking activated, judged by
/// the honest workload's tags.
pub fn c1_coverage(honest: &Workload, rank: &GlobalRank) -> Vec<f64> {
    let mut total = vec![0.0; honest.app_count()];
    let mut active = vec![0.0; honest.app_count()];
    for (app, spec) in honest.apps() {
        for s in spec.service_ids() {
            if spec.criticality_of(s) == Criticality::C1 {
                total[app.index()] += spec.service(s).total_demand().scalar();
            }
        }
    }
    for item in &rank.items {
        let spec = honest.app(item.app);
        if item.service.index() < spec.service_count()
            && spec.criticality_of(item.service) == Criticality::C1
        {
            active[item.app.index()] += item.demand.scalar();
        }
    }
    total
        .iter()
        .zip(&active)
        .map(|(&t, &a)| if t > 0.0 { (a / t).min(1.0) } else { 1.0 })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objectives::{CriticalityObjective, ObjectiveKind};
    use crate::planner::PlannerConfig;
    use phoenix_cluster::packing::PackingConfig;
    use phoenix_cluster::Resources;

    /// A healthy app: C1 frontend, C2 api, C5 chat (C1 share = 0.4).
    fn honest_app(name: &str) -> AppSpec {
        let mut b = AppSpecBuilder::new(name);
        let fe = b.add_service("fe", Resources::cpu(2.0), Some(Criticality::C1), 1);
        let api = b.add_service("api", Resources::cpu(2.0), Some(Criticality::C2), 1);
        let chat = b.add_service("chat", Resources::cpu(1.0), Some(Criticality::C5), 1);
        b.add_dependency(fe, api);
        b.add_dependency(fe, chat);
        b.build().unwrap()
    }

    #[test]
    fn healthy_tags_pass_the_audit() {
        let w = Workload::new(vec![honest_app("a")]);
        let report = audit_workload(&w, &AuditConfig::default());
        assert!(report.passed());
        assert!(report.apps[0].clean());
        assert!((report.apps[0].c1_demand_share - 0.4).abs() < 1e-9);
        assert_eq!(report.apps[0].distinct_levels, 3);
        assert_eq!(report.suspicious().count(), 0);
    }

    #[test]
    fn inflated_app_is_flagged() {
        let w = Workload::new(vec![inflate_tags(&honest_app("liar"))]);
        let report = audit_workload(&w, &AuditConfig::default());
        assert!(!report.passed());
        let finding = &report.apps[0].findings[0];
        assert!(matches!(finding, Finding::Inflated { share } if *share > 0.99));
        assert!(finding.to_string().contains("claims C1"));
    }

    #[test]
    fn fully_untagged_app_is_flagged() {
        let mut b = AppSpecBuilder::new("untagged");
        for i in 0..3 {
            b.add_service(format!("s{i}"), Resources::cpu(1.0), None, 1);
        }
        let report = audit_workload(
            &Workload::new(vec![b.build().unwrap()]),
            &AuditConfig::default(),
        );
        assert_eq!(report.apps[0].findings, vec![Finding::FullyUntagged]);
        assert_eq!(report.apps[0].untagged_share, 1.0);
    }

    #[test]
    fn single_level_non_c1_is_flagged() {
        let mut b = AppSpecBuilder::new("flat");
        for i in 0..3 {
            b.add_service(
                format!("s{i}"),
                Resources::cpu(1.0),
                Some(Criticality::C3),
                1,
            );
        }
        let report = audit_workload(
            &Workload::new(vec![b.build().unwrap()]),
            &AuditConfig::default(),
        );
        assert_eq!(
            report.apps[0].findings,
            vec![Finding::SingleLevel {
                level: Criticality::C3
            }]
        );
        assert!(report.apps[0].findings[0].to_string().contains("C3"));
    }

    #[test]
    fn small_and_unsubscribed_apps_are_exempt() {
        let mut tiny = AppSpecBuilder::new("tiny");
        tiny.add_service("only", Resources::cpu(1.0), Some(Criticality::C1), 1);
        let mut legacy = AppSpecBuilder::new("legacy");
        for i in 0..4 {
            legacy.add_service(
                format!("s{i}"),
                Resources::cpu(1.0),
                Some(Criticality::C1),
                1,
            );
        }
        legacy.phoenix_enabled(false);
        let w = Workload::new(vec![tiny.build().unwrap(), legacy.build().unwrap()]);
        assert!(audit_workload(&w, &AuditConfig::default()).passed());
    }

    #[test]
    fn inflate_preserves_everything_but_tags() {
        let app = honest_app("x");
        let lying = inflate_tags(&app);
        assert_eq!(lying.name(), app.name());
        assert_eq!(lying.service_count(), app.service_count());
        assert_eq!(lying.total_demand(), app.total_demand());
        assert_eq!(
            lying.dependency().unwrap().edge_count(),
            app.dependency().unwrap().edge_count()
        );
        for s in lying.service_ids() {
            assert_eq!(lying.criticality_of(s), Criticality::C1);
        }
    }

    /// Two identical apps: C1 frontend (2 CPU) + three C3 workers (2 CPU
    /// each). Total demand 8 per app; the cluster holds 8.
    fn contested_workload() -> Workload {
        let mut apps = Vec::new();
        for name in ["honest", "liar"] {
            let mut b = AppSpecBuilder::new(name);
            b.add_service("fe", Resources::cpu(2.0), Some(Criticality::C1), 1);
            for i in 0..3 {
                b.add_service(
                    format!("w{i}"),
                    Resources::cpu(2.0),
                    Some(Criticality::C3),
                    1,
                );
            }
            apps.push(b.build().unwrap());
        }
        Workload::new(apps)
    }

    fn priority_config() -> PhoenixConfig {
        PhoenixConfig {
            objective: Box::new(CriticalityObjective),
            planner: PlannerConfig {
                continue_on_saturation: true,
                ..PlannerConfig::default()
            },
            packing: PackingConfig::default(),
        }
    }

    #[test]
    fn quota_free_priority_rewards_inflation() {
        let w = contested_workload();
        let state = ClusterState::homogeneous(2, Resources::cpu(4.0));
        let br = blast_radius(&w, AppId::new(1), &state, &priority_config());
        // Honest: both C1s, ties favour app0's workers → liar held 2.
        // Inflated: the liar's "C1" workers outrank app0's C3 workers.
        assert!(br.inflator_gain() > 1.9, "gain = {}", br.inflator_gain());
        assert!(br.victim_loss() > 1.9, "loss = {}", br.victim_loss());
        // The honest app's truly-critical frontend still runs (C1 beats
        // C1-tie-broken-by-id), so harm lands on its lower tiers here.
        assert_eq!(br.honest_c1[0], 1.0);
    }

    #[test]
    fn fairness_objective_bounds_inflation_gain() {
        let w = contested_workload();
        let state = ClusterState::homogeneous(2, Resources::cpu(4.0));
        let br = blast_radius(
            &w,
            AppId::new(1),
            &state,
            &PhoenixConfig::with_objective(ObjectiveKind::Fairness),
        );
        // Fair share is 4 per app regardless of what the tags claim, so the
        // liar gains nothing and no victim loses anything.
        assert!(
            br.inflator_gain().abs() < 1e-9,
            "gain = {}",
            br.inflator_gain()
        );
        assert!(br.victim_loss() < 1e-9, "loss = {}", br.victim_loss());
        assert_eq!(br.worst_victim(), None);
        assert_eq!(br.adversarial_c1[0], 1.0, "honest C1s keep running");
    }

    #[test]
    fn c1_coverage_judges_against_honest_tags() {
        let w = contested_workload();
        let state = ClusterState::homogeneous(2, Resources::cpu(4.0));
        let br = blast_radius(&w, AppId::new(1), &state, &priority_config());
        // The liar's own truly-C1 frontend keeps running in both runs; its
        // inflated workers do NOT count as critical coverage.
        assert_eq!(br.honest_c1[1], 1.0);
        assert_eq!(br.adversarial_c1[1], 1.0);
    }
}
