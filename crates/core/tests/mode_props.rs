//! Property tests for the serving-mode refactor: mode choices degrade
//! monotonically as capacity tightens, ladder admission survives hostile
//! (NaN/±inf) objective scores without losing determinism, and mode shifts
//! never co-occur with a start/stop/migrate of the same pod.

use phoenix_cluster::packing::PackingConfig;
use phoenix_cluster::{ClusterState, NodeId, Resources};
use phoenix_core::actions::{mode_shift_actions, Action};
use phoenix_core::controller::{plan_with, plan_with_pool, PhoenixConfig};
use phoenix_core::objectives::{OperatorObjective, RankContext};
use phoenix_core::planner::PlannerConfig;
use phoenix_core::spec::{AppId, AppSpec, AppSpecBuilder, ModeSpec, ServingMode, Workload};
use phoenix_core::tags::Criticality;
use phoenix_exec::Pool;
use proptest::prelude::*;

/// Random app where each service carries either no ladder, a minimal
/// Full/Shed table, or the full four-rung lattice.
fn arb_modal_app() -> impl Strategy<Value = AppSpec> {
    (2usize..8).prop_flat_map(|n| {
        let levels = proptest::collection::vec(1u8..6, n);
        let ladders = proptest::collection::vec(0u8..3, n);
        let replicas = proptest::collection::vec(1u16..3, n);
        (levels, ladders, replicas).prop_map(move |(levels, ladders, replicas)| {
            let mut b = AppSpecBuilder::new("modal");
            for i in 0..n {
                let full = 1.0 + (i % 4) as f64;
                let id = b.add_service(
                    format!("s{i}"),
                    Resources::cpu(full),
                    Some(Criticality::new(levels[i])),
                    replicas[i],
                );
                match ladders[i] {
                    1 => {
                        b.service_modes(
                            id,
                            vec![
                                ModeSpec::new(ServingMode::Full, Resources::cpu(full), 1.0),
                                ModeSpec::new(ServingMode::Shed, Resources::cpu(full * 0.25), 0.1),
                            ],
                        );
                    }
                    2 => {
                        b.service_modes(
                            id,
                            vec![
                                ModeSpec::new(ServingMode::Full, Resources::cpu(full), 1.0),
                                ModeSpec::new(
                                    ServingMode::StaleCache,
                                    Resources::cpu(full * 0.75),
                                    0.8,
                                ),
                                ModeSpec::new(
                                    ServingMode::ReadOnly,
                                    Resources::cpu(full * 0.5),
                                    0.5,
                                ),
                                ModeSpec::new(ServingMode::Shed, Resources::cpu(full * 0.25), 0.1),
                            ],
                        );
                    }
                    _ => {}
                }
            }
            b.build().unwrap()
        })
    })
}

/// Deterministic pseudo-chaos: a scoring function that returns NaN and
/// ±inf on a hash of the candidate. Exercises the ranker's total-order
/// handling (`total_cmp` + app-id tie-breaks) on mode ladders.
#[derive(Debug)]
struct ChaoticObjective {
    salt: u64,
}

impl OperatorObjective for ChaoticObjective {
    fn score(&self, ctx: &RankContext) -> f64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64 ^ self.salt;
        for b in [
            ctx.app.index() as u64,
            ctx.next_demand.to_bits(),
            ctx.mode_utility.to_bits(),
        ] {
            h ^= b;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        match h % 7 {
            0 => f64::NAN,
            1 => f64::INFINITY,
            2 => f64::NEG_INFINITY,
            _ => ((h % 1001) as f64) - 500.0,
        }
    }

    fn name(&self) -> &'static str {
        "chaotic"
    }
}

fn config_with(objective: Box<dyn OperatorObjective>) -> PhoenixConfig {
    PhoenixConfig {
        objective,
        planner: PlannerConfig {
            continue_on_saturation: true,
            ..PlannerConfig::default()
        },
        packing: PackingConfig::default(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Tightening capacity never *upgrades* a chosen mode (single-app
    /// scope: one app's rungs are admitted in chain order, so its
    /// admitted set at a smaller capacity is a prefix of the larger
    /// one's — greedy admission across *multiple* apps is provably
    /// non-monotone, so this property is deliberately per-app).
    #[test]
    fn capacity_tightening_never_upgrades_a_mode(
        app in arb_modal_app(),
        cap in 4.0f64..40.0,
        shrink in 0.2f64..1.0,
    ) {
        let w = Workload::new(vec![app]);
        let config = PhoenixConfig::default();
        let loose = plan_with(&w, &ClusterState::homogeneous(1, Resources::cpu(cap)), &config);
        let tight = plan_with(
            &w,
            &ClusterState::homogeneous(1, Resources::cpu(cap * shrink)),
            &config,
        );
        let planned_tight: std::collections::BTreeSet<_> =
            tight.rank.items.iter().map(|i| i.service).collect();
        let planned_loose: std::collections::BTreeSet<_> =
            loose.rank.items.iter().map(|i| i.service).collect();
        // Single-app admission is a chain prefix: anything planned under
        // the tighter capacity is planned under the looser one too.
        prop_assert!(planned_tight.is_subset(&planned_loose));
        let a = AppId::new(0);
        for &svc in &planned_tight {
            prop_assert!(
                tight.modes.get(a, svc).depth() >= loose.modes.get(a, svc).depth(),
                "service {svc} upgraded from {} to {} when capacity shrank",
                loose.modes.get(a, svc),
                tight.modes.get(a, svc)
            );
        }
    }

    /// NaN/±inf scores neither panic nor break determinism, and ladder
    /// admission stays structurally sound: within a service the admitted
    /// rungs are a contiguous most-degraded-first prefix of its ladder
    /// (strictly decreasing depth in item order), whatever the scores do.
    #[test]
    fn nan_scores_keep_total_order_and_ladder_structure(
        app in arb_modal_app(),
        salt in 0u64..1_000_000,
        nodes in 1usize..5,
        cap in 2.0f64..12.0,
    ) {
        let w = Workload::new(vec![app]);
        let state = ClusterState::homogeneous(nodes, Resources::cpu(cap));
        let a = plan_with_pool(
            &w,
            &state,
            &config_with(Box::new(ChaoticObjective { salt })),
            &Pool::sequential(),
        );
        let b = plan_with_pool(
            &w,
            &state,
            &config_with(Box::new(ChaoticObjective { salt })),
            &Pool::new(4),
        );
        prop_assert_eq!(&a.rank.items, &b.rank.items, "NaN scores broke thread invariance");
        prop_assert_eq!(&a.actions, &b.actions);
        prop_assert_eq!(&a.modes, &b.modes);
        // No (service, mode) pair ranks twice, and per-service depths
        // strictly decrease (deepest rung admitted first).
        let mut seen = std::collections::BTreeSet::new();
        let mut last_depth: Vec<Option<u8>> = vec![None; w.app(AppId::new(0)).service_count()];
        for item in &a.rank.items {
            prop_assert!(
                seen.insert((item.service, item.mode)),
                "duplicate rank item {:?}", (item.service, item.mode)
            );
            let slot = &mut last_depth[item.service.index()];
            if let Some(prev) = *slot {
                prop_assert!(
                    item.mode.depth() < prev,
                    "ladder of {} admitted out of order", item.service
                );
            }
            *slot = Some(item.mode.depth());
        }
    }

    /// A pod that starts, stops, or migrates never *also* receives a mode
    /// shift: shifts are reserved for placement-stable pods.
    #[test]
    fn mode_shift_never_co_occurs_with_start_or_stop(
        app in arb_modal_app(),
        nodes in 2usize..6,
        cap in 3.0f64..10.0,
        fail in 0usize..6,
    ) {
        let w = Workload::new(vec![app]);
        let config = PhoenixConfig::default();
        let empty = ClusterState::homogeneous(nodes, Resources::cpu(cap));
        let first = plan_with(&w, &empty, &config);
        let mut live = first.target.clone();
        if nodes > 1 {
            live.fail_node(NodeId::new((fail % nodes) as u32));
        }
        let second = plan_with(&w, &live, &config);
        let shifts = mode_shift_actions(
            &live,
            &second.target,
            |p| first.modes.mode_of_pod(p),
            &second.modes,
        );
        let mut plan = second.actions.clone();
        plan.insert_mode_shifts(shifts);
        let mut shifted = std::collections::BTreeSet::new();
        let mut placed = std::collections::BTreeSet::new();
        for action in &plan.actions {
            match action {
                Action::ModeShift { pod, .. } => {
                    prop_assert!(shifted.insert(*pod), "pod {pod} shifted twice");
                }
                _ => {
                    prop_assert!(placed.insert(action.pod()));
                }
            }
        }
        prop_assert!(
            shifted.is_disjoint(&placed),
            "a pod received both a mode shift and a placement action"
        );
    }
}
