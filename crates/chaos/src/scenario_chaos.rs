//! Scenario-suite chaos: pre-production audits over *generated* failure
//! families instead of a single hand-picked node kill.
//!
//! [`crate::node_chaos`] sweeps one failure shape at increasing degrees;
//! this module replays a whole `phoenix-scenarios` suite (cascades,
//! rolling maintenance, blast radii, surges, flap storms, gray aging)
//! through the simulated control plane and reports, per family, whether
//! the application's critical request survived and how fast it came back
//! — the "different degrees of failure" report of §5 extended to
//! different *shapes* of failure.

use phoenix_apps::AppModel;
use phoenix_core::policies::ResiliencePolicy;
use phoenix_core::spec::{ServiceId, Workload};
use phoenix_exec::Pool;
use phoenix_kubesim::run::{simulate, SimConfig};
use phoenix_kubesim::time::SimTime;
use phoenix_scenarios::model::{ScenarioError, SuiteDoc};

/// Per-family resilience summary over one suite.
#[derive(Debug, Clone, PartialEq)]
pub struct FamilyResilience {
    /// Family slug.
    pub family: String,
    /// Scenarios simulated.
    pub scenarios: u32,
    /// Scenarios in which the critical request is serving at the horizon
    /// (it recovered from every wave, or never stopped).
    pub critical_recovered: u32,
    /// Worst time from first disruption until the critical request came
    /// back **for good** (stayed up through the horizon), among the
    /// scenarios that went down and recovered.
    pub worst_restore: Option<SimTime>,
    /// Mean harvest (Σ served·utility / Σ offered) at the final sample.
    pub mean_settled_utility: f64,
}

/// Replays `suite` for `model` under `policy` on the
/// [global pool](phoenix_exec::global); see [`scenario_audit_on`] to pin
/// a pool explicitly.
///
/// # Errors
///
/// Propagates suite validation/compilation errors before simulating.
pub fn scenario_audit(
    model: &AppModel,
    policy: &dyn ResiliencePolicy,
    suite: &SuiteDoc,
    sim: &SimConfig,
) -> Result<Vec<FamilyResilience>, ScenarioError> {
    scenario_audit_on(model, policy, suite, sim, phoenix_exec::global())
}

/// [`scenario_audit`] on an explicit [`Pool`]: scenarios fan out
/// independently and fold per family strictly in suite order, so the
/// report is byte-identical for every thread count.
///
/// # Errors
///
/// As [`scenario_audit`].
pub fn scenario_audit_on(
    model: &AppModel,
    policy: &dyn ResiliencePolicy,
    suite: &SuiteDoc,
    sim: &SimConfig,
    pool: &Pool,
) -> Result<Vec<FamilyResilience>, ScenarioError> {
    if suite.version != SuiteDoc::VERSION {
        return Err(ScenarioError::Version(suite.version));
    }
    // One app under test: surges must target app 0 or the suite is a
    // mismatch for this audit.
    suite.check_surge_targets(1)?;
    // `compile` validates each scenario — no separate validation pass.
    let compiled: Vec<_> = suite
        .scenarios
        .iter()
        .map(|s| s.compile().map(|c| (s, c)))
        .collect::<Result<_, _>>()?;
    let workload = Workload::new(vec![model.spec.clone()]);

    let runs = pool.par_map(&compiled, |(doc, scenario)| {
        let trace = simulate(&workload, policy, scenario, sim, doc.horizon());
        let disruption = doc.first_disruption().unwrap_or(SimTime::ZERO);
        let up_at = |t: SimTime, s: ServiceId| trace.service_up(&workload, 0, s.index() as u32, t);
        // "Recovered" means recovered *for good*: walk the post-disruption
        // samples tracking the last instant the critical goal was unmet —
        // a first wave that misses the critical nodes must not mask a
        // later wave that takes them down through the horizon.
        let mut last_down: Option<SimTime> = None;
        let mut ever_down = false;
        let mut final_up = true;
        for smp in trace.samples.iter().filter(|smp| smp.at >= disruption) {
            let up = model.critical_goal_met(|s| up_at(smp.at, s));
            final_up = up;
            if !up {
                ever_down = true;
                last_down = Some(smp.at);
            }
        }
        let restore = if !final_up {
            None // still down at the horizon
        } else if !ever_down {
            Some(SimTime::ZERO) // never stopped serving
        } else {
            // Up for good from the sample after the last down instant.
            last_down.map(|t| (t + sim.sample_interval).saturating_sub(disruption))
        };
        let settled = trace
            .samples
            .last()
            .map(|smp| {
                let outcomes = model.outcomes(|s| up_at(smp.at, s));
                let harvested: f64 = outcomes.iter().map(|o| o.served_rps * o.utility).sum();
                let offered: f64 = model
                    .requests
                    .iter()
                    .map(|r| r.rate_rps * r.utility_full)
                    .sum();
                if offered > 0.0 {
                    harvested / offered
                } else {
                    0.0
                }
            })
            .unwrap_or(0.0);
        (doc.family.clone(), restore, settled)
    });

    // Family fold, strictly in suite order.
    let mut out: Vec<FamilyResilience> = Vec::new();
    for (family, restore, settled) in runs {
        let card = match out.iter_mut().find(|c| c.family == family) {
            Some(c) => c,
            None => {
                out.push(FamilyResilience {
                    family,
                    scenarios: 0,
                    critical_recovered: 0,
                    worst_restore: None,
                    mean_settled_utility: 0.0,
                });
                out.last_mut().expect("just pushed")
            }
        };
        card.scenarios += 1;
        if restore.is_some() {
            card.critical_recovered += 1;
            card.worst_restore = card.worst_restore.max(restore);
        }
        card.mean_settled_utility += settled;
    }
    for c in &mut out {
        c.mean_settled_utility /= f64::from(c.scenarios.max(1));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use phoenix_apps::overleaf::{overleaf, OverleafVariant};
    use phoenix_core::policies::PhoenixPolicy;
    use phoenix_scenarios::generate::{generate_suite, Family, GeneratorConfig};

    fn suite() -> SuiteDoc {
        generate_suite(&GeneratorConfig {
            nodes: 6,
            node_cpu: 8.0,
            scenarios_per_family: 2,
            apps: 1,
            seed: 5,
        })
    }

    #[test]
    fn audit_covers_every_family_and_recovers_critical() {
        let m = overleaf("o", OverleafVariant::Edits, 1.0);
        let report =
            scenario_audit(&m, &PhoenixPolicy::fair(), &suite(), &SimConfig::default()).unwrap();
        assert_eq!(report.len(), Family::all().len());
        for card in &report {
            assert_eq!(card.scenarios, 2, "{}", card.family);
            assert!(
                card.mean_settled_utility > 0.0,
                "{}: no harvest at all",
                card.family
            );
            // Phoenix brings the critical request back in every generated
            // scenario of this small suite.
            assert_eq!(
                card.critical_recovered, card.scenarios,
                "{}: critical request lost",
                card.family
            );
        }
    }

    #[test]
    fn audit_is_thread_count_invariant() {
        let m = overleaf("o", OverleafVariant::Edits, 1.0);
        let s = suite();
        let sim = SimConfig::default();
        let seq =
            scenario_audit_on(&m, &PhoenixPolicy::fair(), &s, &sim, &Pool::sequential()).unwrap();
        let par = scenario_audit_on(&m, &PhoenixPolicy::fair(), &s, &sim, &Pool::new(4)).unwrap();
        assert_eq!(seq.len(), par.len());
        for (a, b) in seq.iter().zip(&par) {
            assert_eq!(a.family, b.family);
            assert_eq!(a.critical_recovered, b.critical_recovered);
            assert_eq!(a.worst_restore, b.worst_restore);
            assert_eq!(
                a.mean_settled_utility.to_bits(),
                b.mean_settled_utility.to_bits()
            );
        }
    }

    #[test]
    fn invalid_suite_rejected() {
        let m = overleaf("o", OverleafVariant::Edits, 1.0);
        let mut s = suite();
        s.scenarios[0].nodes = 0;
        assert!(scenario_audit(&m, &PhoenixPolicy::fair(), &s, &SimConfig::default()).is_err());
    }
}
