//! Trace replay under a time-varying capacity profile — Fig. 8a.
//!
//! The cluster's healthy fraction follows a script (failures, partial
//! restores); at every change the scheme replans, and between changes the
//! environment serves the request templates whose microservices are all
//! active. Phoenix's criticality-aware reallocation keeps the
//! high-traffic templates alive and serves ≈2× the requests of the
//! non-cooperative baselines over the window.

use phoenix_cluster::failure::{fail_nodes, restore_all};
use phoenix_cluster::{ClusterState, NodeId, PodKey};
use phoenix_core::policies::ResiliencePolicy;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::scenario::AdaptLabEnv;

/// Capacity script: `(time_secs, healthy_fraction)` change points, sorted
/// by time. Between points the fraction holds.
pub type CapacityScript = Vec<(f64, f64)>;

/// One tick of the replay output.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReplayTick {
    /// Time in seconds.
    pub t: f64,
    /// Healthy capacity fraction at this tick.
    pub capacity_frac: f64,
    /// Requests served per second across all apps.
    pub served_rps: f64,
}

/// Result of replaying one policy.
#[derive(Debug, Clone, Default)]
pub struct ReplayResult {
    /// Per-tick series.
    pub ticks: Vec<ReplayTick>,
    /// Total requests served over the window.
    pub total_requests: f64,
}

/// Replays `script` against `env` under `policy`.
///
/// `duration_secs` bounds the window; `step_secs` sets the tick. Failures
/// pick random healthy nodes (seeded); a fraction increase restores all
/// nodes then re-fails down to the target, modelling rolling recovery.
pub fn replay(
    env: &AdaptLabEnv,
    policy: &dyn ResiliencePolicy,
    script: &CapacityScript,
    duration_secs: f64,
    step_secs: f64,
    seed: u64,
) -> ReplayResult {
    assert!(step_secs > 0.0, "step must be positive");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut state = env.baseline.clone();
    let mut result = ReplayResult::default();
    let mut script_idx = 0usize;
    let mut frac = 1.0;

    // Request rate per template: weight spread over the 7-day window,
    // rescaled so the whole environment's nominal load is its template
    // weight share (shape is what matters for the figure).
    let window_secs = 7.0 * 24.0 * 3600.0;

    let mut t = 0.0;
    while t < duration_secs {
        // Apply any change points due at or before t.
        let mut changed = false;
        while script_idx < script.len() && script[script_idx].0 <= t {
            frac = script[script_idx].1.clamp(0.0, 1.0);
            set_capacity_fraction(&mut state, frac, &mut rng);
            changed = true;
            script_idx += 1;
        }
        if changed {
            let plan = policy.plan(&env.workload, &state);
            state = apply_target(&state, &plan.target);
        }
        let rps = served_rps(env, &state, window_secs);
        result.ticks.push(ReplayTick {
            t,
            capacity_frac: frac,
            served_rps: rps,
        });
        result.total_requests += rps * step_secs;
        t += step_secs;
    }
    result
}

/// Brings the healthy-node fraction to `frac`: restores everything, then
/// fails a random subset. Running pods on failed nodes evict; pods on
/// restored nodes are *not* resurrected (the policy replan handles that).
fn set_capacity_fraction(state: &mut ClusterState, frac: f64, rng: &mut StdRng) {
    // Preserve current assignments on surviving nodes: remember them.
    let keep: Vec<(PodKey, NodeId, phoenix_cluster::Resources)> = state.assignments().collect();
    restore_all(state);
    let total = state.node_count();
    let fail_count = ((1.0 - frac) * total as f64).round() as usize;
    let mut ids: Vec<NodeId> = state.node_ids();
    ids.shuffle(rng);
    ids.truncate(fail_count);
    fail_nodes(state, &ids);
    // Re-add survivors that were dropped because their node just failed —
    // fail_nodes already evicted them; nothing else to do. `keep` is only
    // used for the debug assertion below.
    debug_assert!(state.pod_count() <= keep.len());
}

/// Adopts the policy's target as the new live state (replanning is
/// instantaneous at AdaptLab's time scale).
fn apply_target(_live: &ClusterState, target: &ClusterState) -> ClusterState {
    target.clone()
}

/// Requests served per second: templates whose services are all active.
fn served_rps(env: &AdaptLabEnv, state: &ClusterState, window_secs: f64) -> f64 {
    let mut rps = 0.0;
    for (ai, template_idx) in env.instance_of.iter().enumerate() {
        let template = &env.trace[*template_idx];
        for t in &template.templates {
            let all_up = t.services.iter().all(|s| {
                state
                    .node_of(PodKey::new(ai as u32, s.index() as u32, 0))
                    .is_some()
            });
            if all_up {
                rps += t.weight / window_secs;
            }
        }
    }
    rps
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alibaba::AlibabaConfig;
    use crate::scenario::{build_env, EnvConfig};
    use crate::tagging::TaggingScheme;
    use phoenix_core::policies::{FairPolicy, PhoenixPolicy, PriorityPolicy};

    fn env() -> AdaptLabEnv {
        build_env(&EnvConfig {
            nodes: 50,
            node_capacity: 64.0,
            target_utilization: 0.7,
            tagging: TaggingScheme::ServiceLevel { percentile: 0.9 },
            alibaba: AlibabaConfig {
                apps: 5,
                max_services: 100,
                max_requests: 60_000.0,
                ..AlibabaConfig::default()
            },
            seed: 17,
            ..EnvConfig::default()
        })
    }

    fn script() -> CapacityScript {
        vec![(0.0, 1.0), (120.0, 0.4), (360.0, 0.7), (480.0, 1.0)]
    }

    #[test]
    fn full_capacity_serves_full_load() {
        let e = env();
        let r = replay(&e, &PhoenixPolicy::fair(), &vec![(0.0, 1.0)], 60.0, 15.0, 1);
        assert_eq!(r.ticks.len(), 4);
        let first = r.ticks[0].served_rps;
        assert!(first > 0.0);
        // Constant capacity → constant service.
        assert!(r.ticks.iter().all(|t| (t.served_rps - first).abs() < 1e-9));
    }

    #[test]
    fn capacity_drop_reduces_then_recovery_restores() {
        let e = env();
        let r = replay(&e, &PhoenixPolicy::fair(), &script(), 600.0, 15.0, 2);
        let at = |secs: f64| {
            r.ticks
                .iter()
                .find(|t| (t.t - secs).abs() < 1e-9)
                .unwrap()
                .served_rps
        };
        assert!(at(150.0) < at(60.0), "drop after failure");
        assert!(at(540.0) >= at(150.0), "recovery after restore");
    }

    #[test]
    fn phoenix_competitive_on_aggregate_requests() {
        // Under the synthetic traces, tag-respecting baselines (Priority)
        // and quota baselines (Fair) also keep request-serving C1 sets
        // alive, so Phoenix's edge concentrates in per-app availability
        // (asserted in the runner tests / Fig. 7a) rather than raw request
        // volume. Here we require Phoenix to stay within 15 % of the best
        // baseline and ahead of no-op adaptation.
        let e = env();
        let phx = replay(&e, &PhoenixPolicy::fair(), &script(), 600.0, 15.0, 3);
        let fair = replay(&e, &FairPolicy::default(), &script(), 600.0, 15.0, 3);
        let prio = replay(&e, &PriorityPolicy::default(), &script(), 600.0, 15.0, 3);
        let best = fair.total_requests.max(prio.total_requests);
        assert!(phx.total_requests > 0.0);
        assert!(
            phx.total_requests >= 0.85 * best,
            "phoenix {} vs best baseline {best}",
            phx.total_requests
        );
    }

    #[test]
    fn deterministic_under_seed() {
        let e = env();
        let a = replay(&e, &PhoenixPolicy::fair(), &script(), 300.0, 15.0, 5);
        let b = replay(&e, &PhoenixPolicy::fair(), &script(), 300.0, 15.0, 5);
        assert_eq!(a.ticks, b.ticks);
    }
}
