//! Guard bench: the **disabled** recorder must be free on the planner's
//! hot path.
//!
//! The instrumentation is compiled into release planners unconditionally
//! — `phoenix_obs::global()` is one relaxed atomic load, and every
//! counter/timer call is a branch on `None`. This bench holds that
//! contract to a number: a 10k-node cold plan with the default (disabled)
//! recorder installed must stay within **2%** of the same plan measured
//! back-to-back, and a burst of one million disabled `incr` calls must be
//! a rounding error next to the plan itself. The wall-clock comparison is
//! honest only with real parallelism available, so the verdict line
//! records `host_cpus` like every other timing in this repo.

use std::time::Instant;

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use phoenix_bench::replan_scenario::replan_env;
use phoenix_core::controller::{plan_with, PhoenixConfig};
use phoenix_core::objectives::ObjectiveKind;
use phoenix_obs::{Counter, Recorder};

fn bench_obs_overhead(c: &mut Criterion) {
    let host_cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    let env = replan_env(10_000);
    let cfg = PhoenixConfig::with_objective(ObjectiveKind::Fairness);

    // The default recorder is disabled; make that explicit regardless of
    // what earlier bench groups in this process may have installed.
    phoenix_obs::install(Recorder::disabled());

    let mut group = c.benchmark_group("obs_overhead");
    group.sample_size(10);
    group.bench_function("cold_plan_10k_disabled_recorder", |b| {
        b.iter(|| plan_with(&env.workload, &env.baseline, &cfg))
    });

    // A million disabled counter increments: the raw per-call cost of
    // instrumentation that did not fire.
    group.bench_function("disabled_incr_1m", |b| {
        b.iter(|| {
            let obs = phoenix_obs::global();
            for _ in 0..1_000_000u32 {
                obs.incr(black_box(Counter::PackPlacements));
            }
        })
    });
    group.finish();

    // The <2% assertion, measured back-to-back outside criterion so the
    // two sides see identical cache/frequency conditions: plan time vs
    // plan time plus a proportional burst of disabled recorder calls.
    let plan_t0 = Instant::now();
    let plan = plan_with(&env.workload, &env.baseline, &cfg);
    let plan_secs = plan_t0.elapsed().as_secs_f64();
    black_box(plan.target.pod_count());

    let obs = phoenix_obs::global();
    let obs_t0 = Instant::now();
    for _ in 0..1_000_000u32 {
        obs.incr(black_box(Counter::PackPlacements));
    }
    let obs_secs = obs_t0.elapsed().as_secs_f64();

    let ratio = obs_secs / plan_secs;
    println!(
        "obs_overhead verdict: 1M disabled incrs = {:.3}ms vs 10k-node cold plan = {:.1}ms \
         ({:.2}% — budget 2%), host_cpus = {host_cpus}",
        obs_secs * 1e3,
        plan_secs * 1e3,
        ratio * 100.0
    );
    assert!(
        ratio < 0.02,
        "disabled recorder costs {:.2}% of a 10k-node cold plan (budget 2%)",
        ratio * 100.0
    );
}

criterion_group!(benches, bench_obs_overhead);
criterion_main!(benches);
