//! Figure 7: AdaptLab at scale — availability, normalized revenue, and
//! fairness deviation vs. failure level, Service-Level-P90 tagging +
//! CPM resources.
//!
//! Defaults run a 2 000-node cluster with 3 trials (minutes on one core);
//! `--full` switches to the paper's 100 000 nodes with 5 trials, and
//! `--nodes N` / `--trials N` override directly. Trials fan out across
//! the deterministic `phoenix-exec` pool — `--threads N` (or
//! `PHOENIX_THREADS`) sets the worker count without changing a single
//! output byte.

use phoenix_adaptlab::alibaba::AlibabaConfig;
use phoenix_adaptlab::resources::ResourceModel;
use phoenix_adaptlab::runner::{failure_sweep, point, SweepConfig};
use phoenix_adaptlab::scenario::EnvConfig;
use phoenix_adaptlab::tagging::TaggingScheme;
use phoenix_bench::{arg, f3, flag, init_threads, Table};
use phoenix_core::policies::standard_roster;

fn main() {
    let threads = init_threads();
    let full = flag("full");
    let nodes: usize = arg("nodes", if full { 100_000 } else { 2_000 });
    let trials: u32 = arg("trials", if full { 5 } else { 3 });
    let env = EnvConfig {
        nodes,
        node_capacity: 64.0,
        target_utilization: 0.75,
        resource_model: ResourceModel::CallsPerMinute,
        tagging: TaggingScheme::ServiceLevel { percentile: 0.9 },
        alibaba: AlibabaConfig::default(),
        seed: arg("seed", 42),
    };
    println!(
        "AdaptLab: {nodes} nodes × {} cap, Service-Level-P90 + CPM, {trials} trials, {threads} threads",
        env.node_capacity
    );
    let sweep = SweepConfig {
        failure_fracs: (1..=9).map(|i| i as f64 / 10.0).collect(),
        trials,
        ..SweepConfig::default()
    };
    let roster = standard_roster();
    let points = failure_sweep(&env, &sweep, &roster);

    let names: Vec<String> = roster.iter().map(|p| p.name().to_string()).collect();

    // (a) Critical service availability.
    let mut t = Table::new(std::iter::once("failed%".to_string()).chain(names.iter().cloned()));
    for &frac in &sweep.failure_fracs {
        let mut row = vec![format!("{:.0}", frac * 100.0)];
        for n in &names {
            row.push(f3(point(&points, n, frac).unwrap().metrics.availability));
        }
        t.row(row);
    }
    t.print("Figure 7(a): critical service availability vs. failure level");

    // (b) Normalized revenue.
    let mut t = Table::new(std::iter::once("failed%".to_string()).chain(names.iter().cloned()));
    for &frac in &sweep.failure_fracs {
        let mut row = vec![format!("{:.0}", frac * 100.0)];
        for n in &names {
            row.push(f3(point(&points, n, frac).unwrap().metrics.revenue));
        }
        t.row(row);
    }
    t.print("Figure 7(b): normalized revenue vs. failure level");

    // (c) Fairness deviation at 10/50/90 %.
    let mut t = Table::new(["failed%", "scheme", "deviation+ ", "deviation-", "total"]);
    for frac in [0.1, 0.5, 0.9] {
        for n in &names {
            let m = point(&points, n, frac).unwrap().metrics;
            t.row([
                format!("{:.0}", frac * 100.0),
                n.clone(),
                f3(m.fairness_pos),
                f3(m.fairness_neg),
                f3(m.fairness_pos + m.fairness_neg),
            ]);
        }
    }
    t.print("Figure 7(c): deviation from fair share");

    // Planning-time summary (feeds the Fig. 8b claim).
    let mut t = Table::new(["scheme", "mean plan time (s)"]);
    for n in &names {
        let mean: f64 = sweep
            .failure_fracs
            .iter()
            .map(|&f| point(&points, n, f).unwrap().metrics.plan_secs)
            .sum::<f64>()
            / sweep.failure_fracs.len() as f64;
        t.row([n.clone(), format!("{mean:.3}")]);
    }
    t.print("Planning time at this scale");
}
