//! Property tests for the tag-auditing layer: inflation is always caught,
//! the transformation preserves everything except tags, and blast-radius
//! accounting is internally consistent.

use phoenix_cluster::{ClusterState, Resources};
use phoenix_core::audit::{audit_workload, blast_radius, inflate_tags, AuditConfig, Finding};
use phoenix_core::controller::PhoenixConfig;
use phoenix_core::objectives::ObjectiveKind;
use phoenix_core::spec::{AppId, AppSpec, AppSpecBuilder, ServiceId, Workload};
use phoenix_core::tags::Criticality;
use proptest::prelude::*;

fn arb_app() -> impl Strategy<Value = AppSpec> {
    (3usize..12).prop_flat_map(|n| {
        (
            proptest::collection::vec(1u8..8, n),
            proptest::collection::vec((0..n, 0..n), 0..n),
            proptest::collection::vec(1.0f64..4.0, n),
        )
            .prop_map(move |(levels, edges, demands)| {
                let mut b = AppSpecBuilder::new("a");
                let ids: Vec<ServiceId> = levels
                    .iter()
                    .zip(&demands)
                    .enumerate()
                    .map(|(i, (&l, &d))| {
                        b.add_service(
                            format!("s{i}"),
                            Resources::cpu(d),
                            Some(Criticality::new(l)),
                            1,
                        )
                    })
                    .collect();
                for (x, y) in edges {
                    if x != y {
                        b.add_dependency(ids[x.min(y)], ids[x.max(y)]);
                    }
                }
                b.build().unwrap()
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The audit flags any subscribed app after inflation (≥3 services).
    #[test]
    fn inflation_is_always_flagged(app in arb_app()) {
        let lying = inflate_tags(&app);
        let report = audit_workload(&Workload::new(vec![lying]), &AuditConfig::default());
        let flagged = report
            .apps[0]
            .findings
            .iter()
            .any(|f| matches!(f, Finding::Inflated { .. }));
        prop_assert!(flagged);
        prop_assert!((report.apps[0].c1_demand_share - 1.0).abs() < 1e-9);
    }

    /// Inflation preserves shape and is idempotent.
    #[test]
    fn inflate_preserves_shape_and_is_idempotent(app in arb_app()) {
        let once = inflate_tags(&app);
        prop_assert_eq!(once.service_count(), app.service_count());
        prop_assert_eq!(once.total_demand(), app.total_demand());
        prop_assert_eq!(once.price_per_unit(), app.price_per_unit());
        prop_assert_eq!(
            once.dependency().map(|g| g.edge_count()),
            app.dependency().map(|g| g.edge_count())
        );
        let twice = inflate_tags(&once);
        prop_assert_eq!(&twice, &once);
    }

    /// Blast-radius bookkeeping: coverage in [0,1], losses non-negative,
    /// deterministic, and the worst victim (when any) really lost coverage.
    #[test]
    fn blast_radius_accounting(
        apps in proptest::collection::vec(arb_app(), 2..5),
        nodes in 2usize..6,
        capacity in 4.0f64..16.0,
        inflator_pick in 0usize..4,
        cost in any::<bool>(),
    ) {
        let workload = Workload::new(apps);
        let inflator = AppId::new((inflator_pick % workload.app_count()) as u32);
        let state = ClusterState::homogeneous(nodes, Resources::cpu(capacity));
        let kind = if cost { ObjectiveKind::Cost } else { ObjectiveKind::Fairness };
        let config = PhoenixConfig::with_objective(kind);

        let br = blast_radius(&workload, inflator, &state, &config);
        let br2 = blast_radius(&workload, inflator, &state, &config);
        prop_assert_eq!(&br, &br2, "blast radius must be deterministic");

        prop_assert_eq!(br.honest_alloc.len(), workload.app_count());
        for v in br.honest_c1.iter().chain(&br.adversarial_c1) {
            prop_assert!((0.0..=1.0).contains(v), "coverage {v} out of range");
        }
        for v in br.honest_alloc.iter().chain(&br.adversarial_alloc) {
            prop_assert!(*v >= 0.0);
        }
        prop_assert!(br.victim_loss() >= 0.0);
        if let Some((victim, drop)) = br.worst_victim() {
            prop_assert!(victim != inflator);
            prop_assert!(drop > 0.0);
            let i = victim.index();
            prop_assert!((br.honest_c1[i] - br.adversarial_c1[i] - drop).abs() < 1e-9);
        }
    }

    /// Conservation: with or without the lie, no app is granted more than
    /// its demand and the cluster grants no more than its capacity.
    ///
    /// (Note the *absence* of a stronger claim: inflating can reorder the
    /// liar's own chain — all-C1 erases its intra-app ordering — so even
    /// the liar's own truly-critical coverage may fall. Lying is
    /// self-defeating as well as antisocial; the unit tests demonstrate
    /// the victim side, this property pins the resource accounting.)
    #[test]
    fn blast_radius_conserves_resources(
        apps in proptest::collection::vec(arb_app(), 2..5),
        nodes in 2usize..6,
        capacity in 4.0f64..16.0,
        cost in any::<bool>(),
    ) {
        let workload = Workload::new(apps);
        let state = ClusterState::homogeneous(nodes, Resources::cpu(capacity));
        let kind = if cost { ObjectiveKind::Cost } else { ObjectiveKind::Fairness };
        let br = blast_radius(&workload, AppId::new(0), &state, &PhoenixConfig::with_objective(kind));
        let total_capacity = state.healthy_capacity().scalar();
        for alloc in [&br.honest_alloc, &br.adversarial_alloc] {
            prop_assert!(alloc.iter().sum::<f64>() <= total_capacity + 1e-6);
            for (app, spec) in workload.apps() {
                prop_assert!(
                    alloc[app.index()] <= spec.total_demand().scalar() + 1e-6,
                    "{} over-allocated",
                    spec.name()
                );
            }
        }
    }
}
