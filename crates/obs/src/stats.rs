//! Nearest-rank percentile math — the one shared implementation.
//!
//! Every percentile in the workspace (latency tables in `phoenix-apps`,
//! campaign `replan_ms_p99` scoring, the criterion shim's median, the
//! wall-clock histograms in [`crate::hist`]) routes through these two
//! functions, so the ⌈q·n⌉ nearest-rank convention cannot drift between
//! copies.

/// Index of the nearest-rank `q`-quantile in a sorted sample of size `n`:
/// the `⌈q·n⌉`-th smallest element, 1-based (so `q = 0.5, n = 4` picks
/// the 2nd smallest — the lower of the two middle samples).
///
/// `q` is clamped to `[0, 1]`; the rank is clamped to `[1, n]`, so
/// `q = 0.0` yields the minimum and `q = 1.0` the maximum.
///
/// # Panics
///
/// Panics when `n == 0` — a percentile of an empty sample set has no
/// defined value, and silently returning one would corrupt reports.
pub fn percentile_index(n: usize, q: f64) -> usize {
    assert!(n > 0, "percentile of an empty sample set");
    let rank = (q.clamp(0.0, 1.0) * n as f64).ceil() as usize;
    rank.clamp(1, n) - 1
}

/// Nearest-rank percentile of an ascending-sorted `f64` slice.
///
/// # Panics
///
/// Panics when `sorted` is empty (see [`percentile_index`]).
pub fn percentile(sorted: &[f64], q: f64) -> f64 {
    sorted[percentile_index(sorted.len(), q)]
}

/// Nearest-rank percentile of an ascending-sorted `u64` slice (used for
/// millisecond/microsecond latency samples that never touch floats).
///
/// # Panics
///
/// Panics when `sorted` is empty (see [`percentile_index`]).
pub fn percentile_u64(sorted: &[u64], q: f64) -> u64 {
    sorted[percentile_index(sorted.len(), q)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nearest_rank_convention() {
        // n = 4, q = 0.5 → ⌈2⌉ = 2nd smallest → index 1 (lower middle).
        assert_eq!(percentile_index(4, 0.5), 1);
        assert_eq!(percentile_index(5, 0.5), 2);
        assert_eq!(percentile_index(100, 0.95), 94);
        assert_eq!(percentile_index(100, 0.99), 98);
        // Extremes clamp to min/max.
        assert_eq!(percentile_index(7, 0.0), 0);
        assert_eq!(percentile_index(7, 1.0), 6);
        assert_eq!(percentile_index(7, -3.0), 0);
        assert_eq!(percentile_index(7, 42.0), 6);
        // A single sample is every percentile.
        assert_eq!(percentile_index(1, 0.01), 0);
        assert_eq!(percentile_index(1, 0.99), 0);
    }

    #[test]
    fn percentile_reads_the_sorted_slice() {
        let sorted = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&sorted, 0.5), 2.0);
        assert_eq!(percentile(&sorted, 1.0), 4.0);
        assert_eq!(percentile_u64(&[10, 20, 30], 0.5), 20);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_panics() {
        percentile(&[], 0.5);
    }
}
