//! Infrastructure-level chaos: random node failures through the simulated
//! control plane ("this service can conduct tests at different degrees of
//! failure and report the results to developers", §5).
//!
//! Where [`crate::audit_tags`] turns services off directly (tag-order
//! injection), this module kills *nodes* and lets the configured
//! resilience policy react — measuring what a developer actually cares
//! about pre-production: does the critical metric survive each failure
//! degree, how far does end-user harvest drop, and how long until the
//! critical service is back.

use phoenix_apps::AppModel;
use phoenix_cluster::Resources;
use phoenix_core::policies::ResiliencePolicy;
use phoenix_core::spec::{ServiceId, Workload};
use phoenix_exec::Pool;
use phoenix_kubesim::run::{simulate, SimConfig};
use phoenix_kubesim::scenario::Scenario;
use phoenix_kubesim::time::SimTime;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Node-chaos run configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeChaosConfig {
    /// Cluster shape.
    pub nodes: usize,
    /// Per-node capacity.
    pub node_capacity: Resources,
    /// Node-failure degrees to test (fraction of nodes killed).
    pub failure_fracs: Vec<f64>,
    /// When the failure strikes.
    pub fail_at: SimTime,
    /// Simulation horizon.
    pub horizon: SimTime,
    /// RNG seed for victim selection.
    pub seed: u64,
}

impl Default for NodeChaosConfig {
    fn default() -> NodeChaosConfig {
        NodeChaosConfig {
            nodes: 8,
            node_capacity: Resources::cpu(8.0),
            failure_fracs: vec![0.25, 0.5, 0.75],
            fail_at: SimTime::from_secs(120),
            horizon: SimTime::from_secs(900),
            seed: 1,
        }
    }
}

/// Outcome of one failure degree.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeChaosOutcome {
    /// Fraction of nodes killed.
    pub failure_frac: f64,
    /// Lowest harvest (Σ served·utility / Σ offered) observed after the
    /// post-failure recovery settled.
    pub settled_utility: f64,
    /// Was the critical request's throughput restored by the policy?
    pub critical_recovered: bool,
    /// Time from failure to critical-service restoration.
    pub critical_restore_after: Option<SimTime>,
}

/// Runs the degree sweep for `model` under `policy`. Degrees fan out
/// across the [global pool](phoenix_exec::global) (`PHOENIX_THREADS`);
/// see [`node_chaos_on`] to pin a pool explicitly.
pub fn node_chaos(
    model: &AppModel,
    policy: &dyn ResiliencePolicy,
    config: &NodeChaosConfig,
) -> Vec<NodeChaosOutcome> {
    node_chaos_on(model, policy, config, phoenix_exec::global())
}

/// [`node_chaos`] on an explicit [`Pool`]: each failure degree runs its
/// own seeded simulation, and outcomes are collected in degree order, so
/// the sweep is byte-identical for every thread count.
pub fn node_chaos_on(
    model: &AppModel,
    policy: &dyn ResiliencePolicy,
    config: &NodeChaosConfig,
    pool: &Pool,
) -> Vec<NodeChaosOutcome> {
    let workload = Workload::new(vec![model.spec.clone()]);
    pool.par_map(&config.failure_fracs, |&frac| {
        let mut scenario = Scenario::new(config.nodes, config.node_capacity);
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut victims: Vec<u32> = (0..config.nodes as u32).collect();
        victims.shuffle(&mut rng);
        victims.truncate(((config.nodes as f64) * frac).round() as usize);
        scenario.kubelet_stop_at(config.fail_at, victims);
        let trace = simulate(
            &workload,
            policy,
            &scenario,
            &SimConfig::default(),
            config.horizon,
        );

        let up_at = |t: SimTime, s: ServiceId| trace.service_up(&workload, 0, s.index() as u32, t);
        // Critical restoration: first sample after the failure where the
        // critical goal holds again.
        let critical_restore = trace
            .samples
            .iter()
            .filter(|smp| smp.at > config.fail_at)
            .find(|smp| model.critical_goal_met(|s| up_at(smp.at, s)))
            .map(|smp| smp.at);
        // Settled harvest: utility at the final sample.
        let settled_utility = trace
            .samples
            .last()
            .map(|smp| {
                let outcomes = model.outcomes(|s| up_at(smp.at, s));
                let harvested: f64 = outcomes.iter().map(|o| o.served_rps * o.utility).sum();
                let offered: f64 = model
                    .requests
                    .iter()
                    .map(|r| r.rate_rps * r.utility_full)
                    .sum();
                if offered > 0.0 {
                    harvested / offered
                } else {
                    0.0
                }
            })
            .unwrap_or(0.0);
        NodeChaosOutcome {
            failure_frac: frac,
            settled_utility,
            critical_recovered: critical_restore.is_some(),
            critical_restore_after: critical_restore.map(|t| t.saturating_sub(config.fail_at)),
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use phoenix_apps::overleaf::{overleaf, OverleafVariant};
    use phoenix_core::policies::{DefaultPolicy, PhoenixPolicy};

    fn cfg() -> NodeChaosConfig {
        NodeChaosConfig {
            nodes: 6,
            node_capacity: Resources::cpu(8.0),
            failure_fracs: vec![0.0, 0.5],
            horizon: SimTime::from_secs(900),
            ..NodeChaosConfig::default()
        }
    }

    #[test]
    fn zero_degree_keeps_full_harvest() {
        let m = overleaf("o", OverleafVariant::Edits, 1.0);
        let out = node_chaos(&m, &PhoenixPolicy::fair(), &cfg());
        assert_eq!(out[0].failure_frac, 0.0);
        assert!((out[0].settled_utility - 1.0).abs() < 1e-9);
        assert!(out[0].critical_recovered);
    }

    #[test]
    fn sharded_packing_policy_reports_identical_chaos_outcomes() {
        // End-to-end through the simulated control plane: a Phoenix
        // policy with sharded packing enabled must produce bit-identical
        // chaos outcomes to the default sequential policy (the sharded
        // path only moves wall-clock, never a byte).
        use phoenix_cluster::packing::PackingConfig;
        let m = overleaf("o", OverleafVariant::Edits, 1.0);
        let sequential = node_chaos(&m, &PhoenixPolicy::fair(), &cfg());
        let sharded_policy = PhoenixPolicy::fair().packing_config(PackingConfig {
            shards: 3,
            ..PackingConfig::default()
        });
        let sharded = node_chaos(&m, &sharded_policy, &cfg());
        assert_eq!(sequential.len(), sharded.len());
        for (a, b) in sequential.iter().zip(&sharded) {
            assert_eq!(a.failure_frac, b.failure_frac);
            assert_eq!(
                a.settled_utility.to_bits(),
                b.settled_utility.to_bits(),
                "utility diverged at degree {}",
                a.failure_frac
            );
            assert_eq!(a.critical_recovered, b.critical_recovered);
            assert_eq!(a.critical_restore_after, b.critical_restore_after);
        }
    }

    #[test]
    fn phoenix_restores_critical_after_node_loss() {
        let m = overleaf("o", OverleafVariant::Edits, 1.0);
        let out = node_chaos(&m, &PhoenixPolicy::fair(), &cfg());
        let degraded = &out[1];
        assert!(degraded.critical_recovered, "{degraded:?}");
        // Recovery well within the paper's 4-minute bound.
        assert!(degraded.critical_restore_after.unwrap() <= SimTime::from_secs(240));
        // Harvest drops (non-critical services shed) but stays positive.
        assert!(degraded.settled_utility > 0.2);
        assert!(degraded.settled_utility < 1.0 + 1e-9);
    }

    #[test]
    fn phoenix_at_least_as_good_as_default() {
        let m = overleaf("o", OverleafVariant::Edits, 1.0);
        let phx = node_chaos(&m, &PhoenixPolicy::fair(), &cfg());
        let dfl = node_chaos(&m, &DefaultPolicy, &cfg());
        assert!(phx[1].settled_utility >= dfl[1].settled_utility - 1e-9);
        assert!(phx[1].critical_recovered || !dfl[1].critical_recovered);
    }

    #[test]
    fn node_chaos_is_thread_count_invariant() {
        let m = overleaf("o", OverleafVariant::Edits, 1.0);
        let seq = node_chaos_on(&m, &PhoenixPolicy::fair(), &cfg(), &Pool::sequential());
        let par = node_chaos_on(&m, &PhoenixPolicy::fair(), &cfg(), &Pool::new(4));
        assert_eq!(seq, par);
    }

    #[test]
    fn outcomes_align_with_degrees() {
        let m = overleaf("o", OverleafVariant::Edits, 1.0);
        let out = node_chaos(
            &m,
            &PhoenixPolicy::fair(),
            &NodeChaosConfig {
                failure_fracs: vec![0.0, 0.25, 0.5, 0.75],
                ..cfg()
            },
        );
        assert_eq!(out.len(), 4);
        // Harvest is non-increasing in failure degree (same seed/victims).
        for w in out.windows(2) {
            assert!(
                w[1].settled_utility <= w[0].settled_utility + 1e-9,
                "{} -> {}",
                w[0].settled_utility,
                w[1].settled_utility
            );
        }
    }
}
