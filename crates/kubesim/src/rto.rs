//! Per-criticality Recovery Time Objectives (§3.1).
//!
//! Diagonal scaling "expands the resilience metrics space": instead of one
//! RTO for the whole application, an app can declare a stringent RTO for
//! its critical functionality and lenient ones for auxiliary tiers. This
//! module evaluates a [`SimTrace`] against such tiered targets: per
//! service, when did it go down, when was it restored, and did its tier's
//! objective hold?

use phoenix_core::spec::{AppId, ServiceId, Workload};
use phoenix_core::tags::Criticality;

use crate::run::SimTrace;
use crate::time::SimTime;

/// Tiered RTO targets: the maximum acceptable outage per criticality
/// level. Levels without an entry have **no** objective (may stay down
/// until capacity returns).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RtoPolicy {
    targets: Vec<(Criticality, SimTime)>,
}

impl RtoPolicy {
    /// An empty policy (no objectives).
    pub fn new() -> RtoPolicy {
        RtoPolicy::default()
    }

    /// Sets the RTO for every service at `level` **or more critical** that
    /// has no tighter target yet.
    pub fn with_target(mut self, level: Criticality, rto: SimTime) -> RtoPolicy {
        self.targets.push((level, rto));
        self.targets.sort_by_key(|&(c, _)| c);
        self
    }

    /// The paper's running example: critical sub-services get a stringent
    /// bound (4 minutes — the measured full-recovery time), non-critical
    /// ones a lenient one (20 minutes — "until the nodes come back").
    pub fn paper_example() -> RtoPolicy {
        RtoPolicy::new()
            .with_target(Criticality::C1, SimTime::from_secs(240))
            .with_target(Criticality::C3, SimTime::from_secs(1200))
    }

    /// The objective applying to `level`: the tightest target whose level
    /// is ≥ `level` (i.e. the first tier that covers it).
    pub fn target_for(&self, level: Criticality) -> Option<SimTime> {
        self.targets
            .iter()
            .find(|&&(tier, _)| level.is_at_least_as_critical_as(tier))
            .map(|&(_, rto)| rto)
    }
}

/// One service's outage episode after a failure event.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceOutage {
    /// Application.
    pub app: AppId,
    /// Service.
    pub service: ServiceId,
    /// Effective criticality.
    pub criticality: Criticality,
    /// First sample at which the service stopped serving.
    pub down_at: SimTime,
    /// First sample at which it served again (`None` = never within the
    /// trace horizon).
    pub restored_at: Option<SimTime>,
    /// The tier's objective, if any.
    pub target: Option<SimTime>,
}

impl ServiceOutage {
    /// Outage duration, when restoration happened.
    pub fn duration(&self) -> Option<SimTime> {
        self.restored_at.map(|r| r.saturating_sub(self.down_at))
    }

    /// Did this outage violate its tier's objective?
    ///
    /// Unrestored services violate any finite target; services without a
    /// target never violate.
    pub fn violated(&self) -> bool {
        match (self.target, self.duration()) {
            (None, _) => false,
            (Some(t), Some(d)) => d > t,
            (Some(_), None) => true,
        }
    }

    /// How far past its tier's objective the restoration ran, in
    /// milliseconds. Unrestored outages are censored at `horizon` (the
    /// outage lasted at least until the trace ended). Zero when the
    /// objective held or the tier has none.
    pub fn excess_over_target(&self, horizon: SimTime) -> u64 {
        let Some(target) = self.target else { return 0 };
        let duration = self
            .duration()
            .unwrap_or_else(|| horizon.saturating_sub(self.down_at));
        duration.saturating_sub(target).as_millis()
    }
}

/// RTO evaluation of one trace.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RtoReport {
    /// All outage episodes that started at or after the failure.
    pub outages: Vec<ServiceOutage>,
}

impl RtoReport {
    /// Episodes violating their objectives.
    pub fn violations(&self) -> Vec<&ServiceOutage> {
        self.outages.iter().filter(|o| o.violated()).collect()
    }

    /// `true` when every tiered objective held.
    pub fn satisfied(&self) -> bool {
        self.outages.iter().all(|o| !o.violated())
    }

    /// Total violation severity of the trace: the sum over violating
    /// outages of [`ServiceOutage::excess_over_target`] (milliseconds past
    /// the tier objective, censored at `horizon` when never restored).
    ///
    /// Zero when every objective held, and strictly ordered beyond that —
    /// a scheme that misses a 240 s objective by ten minutes scores worse
    /// than one that misses it by one — which is exactly the gradient an
    /// adversarial scenario search climbs. One asymmetry with
    /// [`satisfied`](RtoReport::satisfied): an unrestored outage whose
    /// *censored* duration has not yet exceeded its target counts as a
    /// (pessimistic) violation there but contributes zero severity here.
    pub fn severity(&self, horizon: SimTime) -> u64 {
        self.outages
            .iter()
            .map(|o| o.excess_over_target(horizon))
            .sum()
    }

    /// Worst restoration time among services at exactly `level`.
    pub fn worst_recovery(&self, level: Criticality) -> Option<SimTime> {
        self.outages
            .iter()
            .filter(|o| o.criticality == level)
            .map(|o| o.duration().unwrap_or(SimTime::from_secs(u64::MAX / 2000)))
            .max()
    }
}

/// Served-utility summary of a trace around a disruption: how much
/// utility the cluster kept serving while degraded. Binary place/evict
/// policies give up a service's whole weight the moment it no longer
/// fits; mode-aware plans keep a degraded fraction — this report is what
/// the scorecards compare.
#[derive(Debug, Clone, PartialEq)]
pub struct UtilityReport {
    /// Served utility just before the disruption.
    pub baseline: f64,
    /// Minimum served utility at or after the disruption.
    pub worst: f64,
    /// Mean served utility over all samples at or after the disruption.
    pub mean: f64,
}

impl UtilityReport {
    /// `worst / baseline`, clamped to 1.0 when nothing was served before
    /// the disruption (an empty baseline cannot be degraded).
    pub fn worst_fraction(&self) -> f64 {
        if self.baseline > 0.0 {
            self.worst / self.baseline
        } else {
            1.0
        }
    }

    /// `mean / baseline` with the same empty-baseline convention.
    pub fn mean_fraction(&self) -> f64 {
        if self.baseline > 0.0 {
            self.mean / self.baseline
        } else {
            1.0
        }
    }
}

/// Summarizes served utility around a disruption at `failure_at`: the
/// baseline is the last sample strictly before the event, `worst`/`mean`
/// aggregate every sample at or after it. With no post-event samples the
/// report degenerates to the baseline (nothing was disrupted in-trace).
pub fn evaluate_utility(trace: &SimTrace, failure_at: SimTime) -> UtilityReport {
    let baseline = trace.utility_at(failure_at.saturating_sub(SimTime::from_millis(1)));
    let mut worst = f64::INFINITY;
    let mut sum = 0.0;
    let mut count = 0usize;
    for sample in trace.samples.iter().filter(|s| s.at >= failure_at) {
        worst = worst.min(sample.utility);
        sum += sample.utility;
        count += 1;
    }
    if count == 0 {
        return UtilityReport {
            baseline,
            worst: baseline,
            mean: baseline,
        };
    }
    UtilityReport {
        baseline,
        worst,
        mean: sum / count as f64,
    }
}

/// Evaluates `trace` against `policy`: for every service that was serving
/// before `failure_at` and stopped at/after it, record the first outage
/// episode and check its tier's objective.
pub fn evaluate_rto(
    trace: &SimTrace,
    workload: &Workload,
    policy: &RtoPolicy,
    failure_at: SimTime,
) -> RtoReport {
    let mut outages = Vec::new();
    for (ai, app) in workload.apps() {
        for service in app.service_ids() {
            // "Before the failure" = the last sample strictly earlier than
            // the event (at the instant itself the service is already dark).
            let was_up = trace.service_up(
                workload,
                ai.index() as u32,
                service.index() as u32,
                failure_at.saturating_sub(SimTime::from_millis(1)),
            );
            // Scan samples from the failure onward.
            let mut down_at: Option<SimTime> = None;
            let mut restored_at: Option<SimTime> = None;
            for sample in trace.samples.iter().filter(|s| s.at >= failure_at) {
                let up = trace.service_up(
                    workload,
                    ai.index() as u32,
                    service.index() as u32,
                    sample.at,
                );
                match (down_at, up) {
                    (None, false) => down_at = Some(sample.at),
                    (Some(_), true) => {
                        restored_at = Some(sample.at);
                        break;
                    }
                    _ => {}
                }
            }
            if let Some(down) = down_at {
                if was_up || down > failure_at {
                    let criticality = app.criticality_of(service);
                    outages.push(ServiceOutage {
                        app: ai,
                        service,
                        criticality,
                        down_at: down,
                        restored_at,
                        target: policy.target_for(criticality),
                    });
                }
            }
        }
    }
    RtoReport { outages }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run::{simulate, SimConfig};
    use crate::scenario::Scenario;
    use phoenix_cluster::Resources;
    use phoenix_core::policies::{DefaultPolicy, PhoenixPolicy};
    use phoenix_core::spec::AppSpecBuilder;

    fn workload() -> Workload {
        let mut b = AppSpecBuilder::new("tiered");
        b.add_service("fe", Resources::cpu(2.0), Some(Criticality::C1), 1);
        b.add_service("aux", Resources::cpu(2.0), Some(Criticality::C3), 1);
        b.add_service("extra", Resources::cpu(2.0), Some(Criticality::new(6)), 1);
        Workload::new(vec![b.build().unwrap()])
    }

    fn scenario() -> Scenario {
        // 4 nodes; 3 fail at 300 s, return at 1500 s: only the C1 frontend
        // fits the surviving node until then.
        let mut s = Scenario::new(4, Resources::cpu(2.0));
        s.kubelet_stop_at(SimTime::from_secs(300), [0, 1, 2]);
        s.kubelet_start_at(SimTime::from_secs(1500), [0, 1, 2]);
        s
    }

    #[test]
    fn policy_tiers_resolve_tightest_cover() {
        let p = RtoPolicy::paper_example();
        assert_eq!(p.target_for(Criticality::C1), Some(SimTime::from_secs(240)));
        assert_eq!(
            p.target_for(Criticality::C2),
            Some(SimTime::from_secs(1200))
        );
        assert_eq!(
            p.target_for(Criticality::C3),
            Some(SimTime::from_secs(1200))
        );
        assert_eq!(p.target_for(Criticality::new(6)), None);
    }

    #[test]
    fn phoenix_meets_tiered_rto_default_does_not() {
        let w = workload();
        let policy = RtoPolicy::new().with_target(Criticality::C1, SimTime::from_secs(240));
        let cfg = SimConfig::default();
        let horizon = SimTime::from_secs(2000);

        let phx = simulate(&w, &PhoenixPolicy::fair(), &scenario(), &cfg, horizon);
        let report = evaluate_rto(&phx, &w, &policy, SimTime::from_secs(300));
        assert!(report.satisfied(), "violations: {:?}", report.violations());
        // The C1 outage was real but short.
        let c1 = report
            .outages
            .iter()
            .find(|o| o.criticality == Criticality::C1);
        if let Some(o) = c1 {
            assert!(o.duration().unwrap() <= SimTime::from_secs(240));
        }

        let dfl = simulate(&w, &DefaultPolicy, &scenario(), &cfg, horizon);
        let report = evaluate_rto(&dfl, &w, &policy, SimTime::from_secs(300));
        // Default cannot restore the frontend until nodes return at 1500 s
        // (if the frontend landed on a failed node), so either it violated
        // the RTO or it was lucky enough to be on the surviving node — in
        // which case nothing critical went down at all.
        let c1_down = report
            .outages
            .iter()
            .any(|o| o.criticality == Criticality::C1);
        if c1_down {
            assert!(!report.satisfied(), "Default met a 240s RTO it should miss");
        }
    }

    #[test]
    fn unrestored_services_violate_finite_targets() {
        let w = workload();
        // No restore event: non-critical tiers stay down past the horizon.
        let mut s = Scenario::new(4, Resources::cpu(2.0));
        s.kubelet_stop_at(SimTime::from_secs(300), [0, 1, 2]);
        let trace = simulate(
            &w,
            &PhoenixPolicy::fair(),
            &s,
            &SimConfig::default(),
            SimTime::from_secs(1200),
        );
        let strict_everything =
            RtoPolicy::new().with_target(Criticality::new(10), SimTime::from_secs(300));
        let report = evaluate_rto(&trace, &w, &strict_everything, SimTime::from_secs(300));
        assert!(!report.satisfied());
        // With the paper's tiering, the same trace passes: C1 recovers and
        // the C6 service has no objective.
        let tiered = RtoPolicy::new().with_target(Criticality::C1, SimTime::from_secs(240));
        let report = evaluate_rto(&trace, &w, &tiered, SimTime::from_secs(300));
        assert!(report.satisfied(), "violations: {:?}", report.violations());
    }

    #[test]
    fn severity_orders_violations_and_censors_at_horizon() {
        let outage = |down_s: u64, restored_s: Option<u64>, target_s: Option<u64>| ServiceOutage {
            app: AppId::new(0),
            service: ServiceId::new(0),
            criticality: Criticality::C1,
            down_at: SimTime::from_secs(down_s),
            restored_at: restored_s.map(SimTime::from_secs),
            target: target_s.map(SimTime::from_secs),
        };
        let horizon = SimTime::from_secs(2000);

        // Met objective and objective-free tiers contribute nothing.
        assert_eq!(
            outage(300, Some(500), Some(240)).excess_over_target(horizon),
            0
        );
        assert_eq!(outage(300, None, None).excess_over_target(horizon), 0);
        // Restored late: the excess is duration - target.
        assert_eq!(
            outage(300, Some(900), Some(240)).excess_over_target(horizon),
            (600 - 240) * 1000
        );
        // Never restored: censored at the horizon.
        assert_eq!(
            outage(300, None, Some(240)).excess_over_target(horizon),
            (2000 - 300 - 240) * 1000
        );
        // Unrestored but censored before the target elapsed: no severity
        // yet (the `satisfied` asymmetry called out in the docs).
        assert_eq!(outage(1900, None, Some(240)).excess_over_target(horizon), 0);

        let report = RtoReport {
            outages: vec![
                outage(300, Some(900), Some(240)),
                outage(300, None, Some(240)),
                outage(300, Some(500), Some(240)),
            ],
        };
        assert_eq!(report.severity(horizon), (360 + 1460) * 1000);
        // A satisfied report scores zero.
        let ok = RtoReport {
            outages: vec![outage(300, Some(500), Some(240))],
        };
        assert_eq!(ok.severity(horizon), 0);
        assert!(ok.satisfied());
    }

    #[test]
    fn utility_report_ranks_modal_above_binary_under_crunch() {
        use phoenix_core::spec::{ModeSpec, ServingMode};
        // One 2-service app; chat can degrade to a 1-CPU read-only mode.
        let web = |ladder: bool| {
            let mut b = AppSpecBuilder::new("web");
            b.add_service("fe", Resources::cpu(2.0), Some(Criticality::C1), 1);
            let chat = b.add_service("chat", Resources::cpu(2.0), Some(Criticality::C5), 1);
            if ladder {
                b.service_modes(
                    chat,
                    vec![
                        ModeSpec::new(ServingMode::Full, Resources::cpu(2.0), 1.0),
                        ModeSpec::new(ServingMode::ReadOnly, Resources::cpu(1.0), 0.6),
                    ],
                );
            }
            Workload::new(vec![b.build().unwrap()])
        };
        let cfg = SimConfig::default();
        let horizon = SimTime::from_secs(2000);
        let failure_at = SimTime::from_secs(300);
        // One 4-CPU node gray-fails to 3 CPUs for 20 minutes. Binary keeps
        // only the frontend; modal also serves chat read-only.
        let mut s = Scenario::new(1, Resources::cpu(4.0));
        s.capacity_degrade_at(failure_at, [0], 0.75);
        s.capacity_restore_at(SimTime::from_secs(1500), [0]);
        let m = simulate(&web(true), &PhoenixPolicy::fair(), &s, &cfg, horizon);
        let b = simulate(&web(false), &PhoenixPolicy::fair(), &s, &cfg, horizon);
        let mu = evaluate_utility(&m, failure_at);
        let bu = evaluate_utility(&b, failure_at);
        assert!((mu.baseline - 2.0).abs() < 1e-9);
        assert!((bu.baseline - 2.0).abs() < 1e-9);
        // The crunch costs the binary plan a whole service; the modal plan
        // keeps every tier serving in some mode.
        assert!(
            mu.mean > bu.mean,
            "modal mean {} should beat binary mean {}",
            mu.mean,
            bu.mean
        );
        assert!(mu.mean_fraction() <= 1.0 + 1e-9);
        assert!(bu.worst_fraction() < mu.mean_fraction());
    }

    #[test]
    fn utility_report_degenerates_without_post_event_samples() {
        let w = workload();
        let trace = simulate(
            &w,
            &PhoenixPolicy::fair(),
            &Scenario::new(4, Resources::cpu(2.0)),
            &SimConfig::default(),
            SimTime::from_secs(120),
        );
        let report = evaluate_utility(&trace, SimTime::from_secs(600));
        assert_eq!(report.baseline, report.worst);
        assert_eq!(report.baseline, report.mean);
        assert!((report.worst_fraction() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn no_failure_no_outages() {
        let w = workload();
        let trace = simulate(
            &w,
            &PhoenixPolicy::fair(),
            &Scenario::new(4, Resources::cpu(2.0)),
            &SimConfig::default(),
            SimTime::from_secs(600),
        );
        let report = evaluate_rto(
            &trace,
            &w,
            &RtoPolicy::paper_example(),
            SimTime::from_secs(100),
        );
        assert!(report.outages.is_empty());
        assert!(report.satisfied());
    }
}
