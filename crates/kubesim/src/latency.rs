//! Pod lifecycle latency model.
//!
//! The paper's end-to-end recovery time is dominated by pod deletion and
//! startup latencies (§6.1: "the time elapsed between executing action (t3)
//! and completion (t4) can vary depending on the pod deletion and startup
//! times"). We model each as a log-normal around configurable medians —
//! the standard shape for container start times (image pull + runtime
//! init) — sampled per action from a deterministic RNG.

use rand::Rng;

use crate::time::SimTime;

/// A log-normal latency: `exp(N(ln median, sigma))`, clamped to
/// `[min, max]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormalLatency {
    /// Median latency in seconds.
    pub median_secs: f64,
    /// Log-space standard deviation (0 = deterministic).
    pub sigma: f64,
    /// Lower clamp (seconds).
    pub min_secs: f64,
    /// Upper clamp (seconds).
    pub max_secs: f64,
}

impl LogNormalLatency {
    /// A deterministic latency of `secs`.
    pub fn fixed(secs: f64) -> LogNormalLatency {
        LogNormalLatency {
            median_secs: secs,
            sigma: 0.0,
            min_secs: secs,
            max_secs: secs,
        }
    }

    /// Samples one latency.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> SimTime {
        let secs = if self.sigma <= 0.0 {
            self.median_secs
        } else {
            // Box–Muller standard normal.
            let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
            let u2: f64 = rng.gen_range(0.0..1.0);
            let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
            (self.median_secs.ln() + self.sigma * z).exp()
        };
        SimTime::from_secs_f64(secs.clamp(self.min_secs, self.max_secs))
    }
}

/// Latencies for every agent action (Appendix E).
#[derive(Debug, Clone, PartialEq)]
pub struct LatencyModel {
    /// Graceful pod deletion: endpoint removal, SIGTERM drain, SIGKILL cap.
    pub delete: LogNormalLatency,
    /// Pod start: scheduling ack, image pull (usually cached), container
    /// boot, readiness probe.
    pub start: LogNormalLatency,
    /// Extra reroute/iptables reconfiguration time on a migration, on top
    /// of start + delete.
    pub reroute: LogNormalLatency,
    /// Per-action API-server issue overhead (serialized in the agent).
    pub issue_overhead: LogNormalLatency,
}

impl Default for LatencyModel {
    /// Medians calibrated to the paper's CloudLab timeline: detection
    /// ≈100 s, full recovery of all apps < 4 min after the plan is issued.
    fn default() -> LatencyModel {
        LatencyModel {
            delete: LogNormalLatency {
                median_secs: 8.0,
                sigma: 0.4,
                min_secs: 1.0,
                max_secs: 30.0,
            },
            start: LogNormalLatency {
                median_secs: 25.0,
                sigma: 0.5,
                min_secs: 5.0,
                max_secs: 120.0,
            },
            reroute: LogNormalLatency {
                median_secs: 2.0,
                sigma: 0.3,
                min_secs: 0.5,
                max_secs: 10.0,
            },
            issue_overhead: LogNormalLatency {
                median_secs: 0.15,
                sigma: 0.2,
                min_secs: 0.05,
                max_secs: 1.0,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn fixed_is_deterministic() {
        let mut rng = StdRng::seed_from_u64(1);
        let l = LogNormalLatency::fixed(7.0);
        for _ in 0..10 {
            assert_eq!(l.sample(&mut rng), SimTime::from_secs(7));
        }
    }

    #[test]
    fn samples_cluster_near_median_and_respect_clamps() {
        let mut rng = StdRng::seed_from_u64(2);
        let l = LogNormalLatency {
            median_secs: 20.0,
            sigma: 0.5,
            min_secs: 5.0,
            max_secs: 60.0,
        };
        let samples: Vec<f64> = (0..2000)
            .map(|_| l.sample(&mut rng).as_secs_f64())
            .collect();
        assert!(samples.iter().all(|&s| (5.0..=60.0).contains(&s)));
        let mut sorted = samples.clone();
        sorted.sort_by(f64::total_cmp);
        let median = phoenix_core::stats::percentile(&sorted, 0.5);
        assert!((median - 20.0).abs() < 3.0, "median {median}");
    }

    #[test]
    fn deterministic_under_seed() {
        let l = LatencyModel::default();
        let mut a = StdRng::seed_from_u64(3);
        let mut b = StdRng::seed_from_u64(3);
        for _ in 0..50 {
            assert_eq!(l.start.sample(&mut a), l.start.sample(&mut b));
        }
    }
}
