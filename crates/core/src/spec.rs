//! Application specifications: microservices, criticality tags, dependency
//! graphs, and the multi-tenant [`Workload`] the controller plans over.
//!
//! A spec is the paper's "standardized format" input to the planner:
//! container-level resource requirements + criticality tags (+ optionally a
//! dependency graph), with **no application business logic** — the
//! cooperative-degradation interface of §3.

use std::error::Error;
use std::fmt;

use phoenix_cluster::{PodKey, Resources};
use phoenix_dgraph::{DiGraph, NodeId};

use crate::tags::Criticality;

/// Index of an application within a [`Workload`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AppId(pub(crate) u32);

impl AppId {
    /// Creates an app id from a dense index.
    pub fn new(index: u32) -> AppId {
        AppId(index)
    }

    /// Dense index of the app.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for AppId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "app{}", self.0)
    }
}

/// Index of a microservice within its application.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ServiceId(pub(crate) u32);

impl ServiceId {
    /// Creates a service id from a dense index.
    pub fn new(index: u32) -> ServiceId {
        ServiceId(index)
    }

    /// Dense index of the service within its app.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ServiceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ms{}", self.0)
    }
}

/// A discrete serving mode — the cooperative-degradation lattice an
/// application can declare per service, ordered from best to most degraded.
///
/// `Full` is mandatory for every mode table; the degraded rungs are the
/// production patterns the paper's cooperation story names: serve from a
/// stale cache, fall back to read-only, or shed all but a trickle of
/// traffic. A service without a mode table is implicitly `Full`-only and
/// plans exactly as before modes existed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ServingMode {
    /// Normal serving at full capacity and utility.
    Full,
    /// Serve cached (possibly stale) responses; writes still accepted.
    StaleCache,
    /// Reject writes, keep reads up.
    ReadOnly,
    /// Shed almost all traffic; keep a health-check trickle alive.
    Shed,
}

impl ServingMode {
    /// All modes, best first.
    pub const ALL: [ServingMode; 4] = [
        ServingMode::Full,
        ServingMode::StaleCache,
        ServingMode::ReadOnly,
        ServingMode::Shed,
    ];

    /// Depth in the degradation lattice: `Full` is 0, `Shed` is 3.
    /// "Tightening capacity never *upgrades* a replica" is "depth never
    /// decreases" in these terms.
    pub fn depth(self) -> u8 {
        match self {
            ServingMode::Full => 0,
            ServingMode::StaleCache => 1,
            ServingMode::ReadOnly => 2,
            ServingMode::Shed => 3,
        }
    }

    /// Stable kebab-case label (scorecards, JSON plans).
    pub fn label(self) -> &'static str {
        match self {
            ServingMode::Full => "full",
            ServingMode::StaleCache => "stale-cache",
            ServingMode::ReadOnly => "read-only",
            ServingMode::Shed => "shed",
        }
    }
}

impl fmt::Display for ServingMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One rung of a service's mode table: what running at `mode` costs and
/// what fraction of the service's value it still delivers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModeSpec {
    /// The serving mode this rung describes.
    pub mode: ServingMode,
    /// Per-replica resource demand at this mode.
    pub demand: Resources,
    /// Utility weight in `[0, ∞)` — the served value per replica relative
    /// to the service's full value (`Full` is conventionally `1.0`).
    pub utility: f64,
}

impl ModeSpec {
    /// Creates a mode rung.
    pub fn new(mode: ServingMode, demand: Resources, utility: f64) -> ModeSpec {
        ModeSpec {
            mode,
            demand,
            utility,
        }
    }
}

/// One microservice of an application.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceSpec {
    /// Human-readable name (e.g. `"spell-check"`).
    pub name: String,
    /// Per-replica resource demand (from the deployment spec, §7).
    pub demand: Resources,
    /// Criticality tag; `None` means untagged → treated as `C1`.
    pub criticality: Option<Criticality>,
    /// Number of replicas (Appendix D); all-or-nothing activation.
    pub replicas: u16,
    /// Ordered degraded-serving table (best mode first, `Full` mandatory,
    /// demand monotonically non-increasing). Empty means the service is
    /// `Full`-only and plans exactly as it did before modes existed.
    pub modes: Vec<ModeSpec>,
}

impl ServiceSpec {
    /// Effective criticality: the tag, or `C1` when untagged (§5).
    pub fn effective_criticality(&self) -> Criticality {
        self.criticality.unwrap_or_default()
    }

    /// Total demand across replicas.
    pub fn total_demand(&self) -> Resources {
        self.demand * f64::from(self.replicas)
    }

    /// `true` when the service declared a degraded-serving table.
    pub fn has_modes(&self) -> bool {
        !self.modes.is_empty()
    }

    /// Per-replica demand at `mode`: the table rung when declared,
    /// otherwise the service's plain demand (so `Full` and mode-less
    /// lookups are bit-identical to the pre-modes planner).
    pub fn mode_demand(&self, mode: ServingMode) -> Resources {
        self.modes
            .iter()
            .find(|m| m.mode == mode)
            .map_or(self.demand, |m| m.demand)
    }

    /// Per-replica utility weight at `mode` (`1.0` when undeclared).
    pub fn mode_utility(&self, mode: ServingMode) -> f64 {
        self.modes
            .iter()
            .find(|m| m.mode == mode)
            .map_or(1.0, |m| m.utility)
    }
}

/// Errors from building or validating application specs.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SpecError {
    /// The app has no services.
    EmptyApp(String),
    /// A dependency edge referenced an unknown service.
    UnknownService {
        /// App being built.
        app: String,
        /// Offending index.
        index: usize,
    },
    /// A dependency edge was a self-loop.
    SelfDependency {
        /// App being built.
        app: String,
        /// The service that would depend on itself.
        index: usize,
    },
    /// A replica count of zero.
    ZeroReplicas {
        /// App being built.
        app: String,
        /// The service with zero replicas.
        service: String,
    },
    /// A mode table that does not start at `Full` in strictly descending
    /// lattice order (covers duplicate mode entries).
    ModeTableOrder {
        /// App being built.
        app: String,
        /// The service with the malformed table.
        service: String,
    },
    /// A per-mode demand or utility weight that is non-finite or negative.
    ModeValueInvalid {
        /// App being built.
        app: String,
        /// The service with the bad rung.
        service: String,
        /// The offending mode.
        mode: ServingMode,
    },
    /// A mode whose demand exceeds the next better mode's demand
    /// (demand must be monotonically non-increasing from `Full`).
    ModeDemandNotMonotone {
        /// App being built.
        app: String,
        /// The service with the non-monotone table.
        service: String,
        /// The rung that grew.
        mode: ServingMode,
    },
    /// A `Full` table rung whose demand disagrees with the service's
    /// declared demand — the two would make the planner ambiguous.
    ModeFullMismatch {
        /// App being built.
        app: String,
        /// The service with the conflicting rung.
        service: String,
    },
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::EmptyApp(a) => write!(f, "app {a} has no services"),
            SpecError::UnknownService { app, index } => {
                write!(
                    f,
                    "app {app}: dependency references unknown service {index}"
                )
            }
            SpecError::SelfDependency { app, index } => {
                write!(f, "app {app}: service {index} cannot depend on itself")
            }
            SpecError::ZeroReplicas { app, service } => {
                write!(f, "app {app}: service {service} has zero replicas")
            }
            SpecError::ModeTableOrder { app, service } => {
                write!(
                    f,
                    "app {app}: service {service} mode table must start at Full \
                     and descend the lattice strictly (no duplicates)"
                )
            }
            SpecError::ModeValueInvalid { app, service, mode } => {
                write!(
                    f,
                    "app {app}: service {service} mode {mode} has a non-finite \
                     or negative demand/utility"
                )
            }
            SpecError::ModeDemandNotMonotone { app, service, mode } => {
                write!(
                    f,
                    "app {app}: service {service} mode {mode} demands more than \
                     a better mode (demand must not increase down the lattice)"
                )
            }
            SpecError::ModeFullMismatch { app, service } => {
                write!(
                    f,
                    "app {app}: service {service} Full mode rung disagrees with \
                     the declared service demand"
                )
            }
        }
    }
}

impl Error for SpecError {}

/// A complete application: services, optional dependency graph, and the
/// operator-facing pricing/subscription knobs.
#[derive(Debug, Clone, PartialEq)]
pub struct AppSpec {
    name: String,
    services: Vec<ServiceSpec>,
    /// Caller→callee edges over service indices; `None` when the app did
    /// not share a dependency graph (planning falls back to tag order).
    dependency: Option<DiGraph<()>>,
    /// Revenue per unit resource (the Cost objective's `C_i`).
    price_per_unit: f64,
    /// Whether the app subscribed to diagonal scaling (`phoenix=enabled`
    /// namespace label, §5). Unsubscribed apps are fully critical.
    phoenix_enabled: bool,
}

impl AppSpec {
    /// App name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The services, indexed by [`ServiceId`].
    pub fn services(&self) -> &[ServiceSpec] {
        &self.services
    }

    /// Number of services.
    pub fn service_count(&self) -> usize {
        self.services.len()
    }

    /// Spec of one service.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of bounds.
    pub fn service(&self, id: ServiceId) -> &ServiceSpec {
        &self.services[id.index()]
    }

    /// All service ids.
    pub fn service_ids(&self) -> impl ExactSizeIterator<Item = ServiceId> {
        (0..self.services.len() as u32).map(ServiceId)
    }

    /// The dependency graph, when provided.
    pub fn dependency(&self) -> Option<&DiGraph<()>> {
        self.dependency.as_ref()
    }

    /// Revenue per unit resource.
    pub fn price_per_unit(&self) -> f64 {
        self.price_per_unit
    }

    /// Whether the app subscribed to diagonal scaling.
    pub fn phoenix_enabled(&self) -> bool {
        self.phoenix_enabled
    }

    /// Effective criticality of a service, accounting for subscription:
    /// services of unsubscribed apps are always `C1` (never shed early).
    pub fn criticality_of(&self, id: ServiceId) -> Criticality {
        if self.phoenix_enabled {
            self.services[id.index()].effective_criticality()
        } else {
            Criticality::C1
        }
    }

    /// Total demand of the whole app (all services × replicas).
    pub fn total_demand(&self) -> Resources {
        self.services.iter().map(ServiceSpec::total_demand).sum()
    }

    /// `true` when any service declared a degraded-serving table.
    pub fn has_modes(&self) -> bool {
        self.services.iter().any(ServiceSpec::has_modes)
    }

    /// A cheap structural fingerprint of everything the planner reads:
    /// name, services (name, demand bits, tag, replicas), dependency
    /// edges, price, and the subscription flag.
    ///
    /// Two specs with equal fingerprints rank identically, so warm
    /// replanning uses this to skip [`crate::planner::app_rank`] for
    /// unchanged applications across rounds. FNV-1a over the raw field
    /// bytes: one linear pass, no allocation.
    pub fn fingerprint(&self) -> u64 {
        let mut h = Fnv::new();
        h.bytes(self.name.as_bytes());
        h.u64(self.services.len() as u64);
        for s in &self.services {
            h.bytes(s.name.as_bytes());
            h.u64(s.demand.cpu.to_bits());
            h.u64(s.demand.mem.to_bits());
            h.u64(match s.criticality {
                Some(c) => 1 + u64::from(c.level()),
                None => 0,
            });
            h.u64(u64::from(s.replicas));
            h.u64(s.modes.len() as u64);
            for m in &s.modes {
                h.u64(u64::from(m.mode.depth()));
                h.u64(m.demand.cpu.to_bits());
                h.u64(m.demand.mem.to_bits());
                h.u64(m.utility.to_bits());
            }
        }
        match &self.dependency {
            None => h.u64(0),
            Some(g) => {
                h.u64(1 + g.node_count() as u64);
                for n in g.node_ids() {
                    h.u64(g.successors(n).len() as u64);
                    for m in g.successors(n) {
                        h.u64(m.index() as u64);
                    }
                }
            }
        }
        h.u64(self.price_per_unit.to_bits());
        h.u64(u64::from(self.phoenix_enabled));
        h.finish()
    }

    /// A copy of the spec with every service's per-replica demand scaled
    /// by `demand_factor` and its replica count scaled by `replica_factor`
    /// (rounded to the nearest count, clamped to at least one replica).
    ///
    /// This is the mid-run demand-surge primitive: a load spike multiplies
    /// resource needs and/or horizontal width without touching names,
    /// tags, dependencies, pricing, or subscription. A factor of exactly
    /// `1.0` leaves its axis **bit-identical** (the field is not
    /// re-multiplied), so a no-op surge cannot perturb a plan.
    pub fn scaled(&self, demand_factor: f64, replica_factor: f64) -> AppSpec {
        let mut app = self.clone();
        for s in &mut app.services {
            if demand_factor != 1.0 {
                s.demand = s.demand * demand_factor.max(0.0);
                // Scale the mode rungs by the same factor: a non-negative
                // multiplier preserves the table's monotonicity invariant.
                for m in &mut s.modes {
                    m.demand = m.demand * demand_factor.max(0.0);
                }
            }
            if replica_factor != 1.0 {
                let scaled = (f64::from(s.replicas) * replica_factor.max(0.0)).round();
                s.replicas = scaled.clamp(1.0, f64::from(u16::MAX)) as u16;
            }
        }
        app
    }

    /// Demand of the subset of services at criticality `c` or more critical.
    pub fn demand_at_criticality(&self, c: Criticality) -> Resources {
        self.service_ids()
            .filter(|&s| self.criticality_of(s).is_at_least_as_critical_as(c))
            .map(|s| self.services[s.index()].total_demand())
            .sum()
    }
}

/// FNV-1a, the classic non-cryptographic byte hash. A collision between
/// a spec's old and new contents would silently reuse a stale cached
/// rank (warm ≠ cold), so the 64-bit width is load-bearing: over
/// structured, non-adversarial spec bytes the chance is negligible, and
/// speed beats cryptographic strength.
struct Fnv(u64);

impl Fnv {
    fn new() -> Fnv {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
        // Length terminator so ("ab","c") and ("a","bc") differ.
        self.u64(bytes.len() as u64);
    }

    fn u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

/// Builder for [`AppSpec`] (non-consuming, per the Rust API guidelines).
///
/// # Examples
///
/// ```
/// use phoenix_core::spec::AppSpecBuilder;
/// use phoenix_core::tags::Criticality;
/// use phoenix_cluster::Resources;
///
/// let mut b = AppSpecBuilder::new("shop");
/// let web = b.add_service("web", Resources::cpu(2.0), Some(Criticality::C1), 2);
/// let rec = b.add_service("recommend", Resources::cpu(1.0), Some(Criticality::C5), 1);
/// b.add_dependency(web, rec);
/// b.price_per_unit(3.0);
/// let app = b.build()?;
/// assert_eq!(app.service_count(), 2);
/// assert_eq!(app.total_demand(), Resources::cpu(5.0));
/// # Ok::<(), phoenix_core::spec::SpecError>(())
/// ```
#[derive(Debug, Clone)]
pub struct AppSpecBuilder {
    name: String,
    services: Vec<ServiceSpec>,
    edges: Vec<(usize, usize)>,
    has_graph: bool,
    price_per_unit: f64,
    phoenix_enabled: bool,
}

impl AppSpecBuilder {
    /// Starts a builder for an app called `name`.
    pub fn new(name: impl Into<String>) -> AppSpecBuilder {
        AppSpecBuilder {
            name: name.into(),
            services: Vec::new(),
            edges: Vec::new(),
            has_graph: false,
            price_per_unit: 1.0,
            phoenix_enabled: true,
        }
    }

    /// Adds a microservice; returns its id.
    pub fn add_service(
        &mut self,
        name: impl Into<String>,
        demand: Resources,
        criticality: Option<Criticality>,
        replicas: u16,
    ) -> ServiceId {
        let id = ServiceId(self.services.len() as u32);
        self.services.push(ServiceSpec {
            name: name.into(),
            demand,
            criticality,
            replicas,
            modes: Vec::new(),
        });
        id
    }

    /// Declares `service`'s degraded-serving table (best mode first;
    /// validated by [`build`](Self::build): `Full` mandatory and matching
    /// the declared demand, strictly descending lattice order, finite
    /// non-negative values, demand monotonically non-increasing).
    ///
    /// # Panics
    ///
    /// Panics if `service` was not returned by this builder's
    /// [`add_service`](Self::add_service).
    pub fn service_modes(
        &mut self,
        service: ServiceId,
        modes: Vec<ModeSpec>,
    ) -> &mut AppSpecBuilder {
        self.services[service.index()].modes = modes;
        self
    }

    /// Declares that `caller` invokes `callee` (adds a DG edge). Calling
    /// this at least once marks the app as having a dependency graph.
    pub fn add_dependency(&mut self, caller: ServiceId, callee: ServiceId) -> &mut AppSpecBuilder {
        self.edges.push((caller.index(), callee.index()));
        self.has_graph = true;
        self
    }

    /// Marks the app as having a dependency graph even with no edges yet
    /// (single-service apps with DGs).
    pub fn with_graph(&mut self) -> &mut AppSpecBuilder {
        self.has_graph = true;
        self
    }

    /// Sets the revenue per unit resource (default 1.0).
    pub fn price_per_unit(&mut self, price: f64) -> &mut AppSpecBuilder {
        self.price_per_unit = price;
        self
    }

    /// Sets the diagonal-scaling subscription (default `true`).
    pub fn phoenix_enabled(&mut self, enabled: bool) -> &mut AppSpecBuilder {
        self.phoenix_enabled = enabled;
        self
    }

    /// Finalizes the spec.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError`] when the app is empty, a replica count is zero,
    /// or a dependency references a missing/self service.
    pub fn build(&self) -> Result<AppSpec, SpecError> {
        if self.services.is_empty() {
            return Err(SpecError::EmptyApp(self.name.clone()));
        }
        for s in &self.services {
            if s.replicas == 0 {
                return Err(SpecError::ZeroReplicas {
                    app: self.name.clone(),
                    service: s.name.clone(),
                });
            }
            self.validate_modes(s)?;
        }
        let dependency = if self.has_graph {
            let mut g = DiGraph::with_capacity(self.services.len());
            for _ in &self.services {
                g.add_node(());
            }
            for &(a, b) in &self.edges {
                if a >= self.services.len() || b >= self.services.len() {
                    return Err(SpecError::UnknownService {
                        app: self.name.clone(),
                        index: a.max(b),
                    });
                }
                if a == b {
                    return Err(SpecError::SelfDependency {
                        app: self.name.clone(),
                        index: a,
                    });
                }
                let _ = g.add_edge(NodeId::from_index(a), NodeId::from_index(b));
            }
            Some(g)
        } else {
            None
        };
        Ok(AppSpec {
            name: self.name.clone(),
            services: self.services.clone(),
            dependency,
            price_per_unit: self.price_per_unit,
            phoenix_enabled: self.phoenix_enabled,
        })
    }

    /// Mode-table validation (satellite of the serving-modes refactor):
    /// the table is either absent or a well-formed descending ladder the
    /// planner can step down without re-checking anything.
    fn validate_modes(&self, s: &ServiceSpec) -> Result<(), SpecError> {
        if s.modes.is_empty() {
            return Ok(());
        }
        let bad_number = |r: &ModeSpec| {
            !r.demand.cpu.is_finite()
                || !r.demand.mem.is_finite()
                || !r.utility.is_finite()
                || r.demand.cpu < 0.0
                || r.demand.mem < 0.0
                || r.utility < 0.0
        };
        for r in &s.modes {
            if bad_number(r) {
                return Err(SpecError::ModeValueInvalid {
                    app: self.name.clone(),
                    service: s.name.clone(),
                    mode: r.mode,
                });
            }
        }
        if s.modes[0].mode != ServingMode::Full {
            return Err(SpecError::ModeTableOrder {
                app: self.name.clone(),
                service: s.name.clone(),
            });
        }
        if s.modes[0].demand != s.demand {
            return Err(SpecError::ModeFullMismatch {
                app: self.name.clone(),
                service: s.name.clone(),
            });
        }
        for pair in s.modes.windows(2) {
            // Strictly descending lattice order also rejects duplicates.
            if pair[1].mode.depth() <= pair[0].mode.depth() {
                return Err(SpecError::ModeTableOrder {
                    app: self.name.clone(),
                    service: s.name.clone(),
                });
            }
            if pair[1].demand.cpu > pair[0].demand.cpu || pair[1].demand.mem > pair[0].demand.mem {
                return Err(SpecError::ModeDemandNotMonotone {
                    app: self.name.clone(),
                    service: s.name.clone(),
                    mode: pair[1].mode,
                });
            }
        }
        Ok(())
    }
}

/// The multi-tenant workload: all applications sharing the cluster.
#[derive(Debug, Clone, Default)]
pub struct Workload {
    apps: Vec<AppSpec>,
}

impl Workload {
    /// Creates a workload from app specs (ids assigned by position).
    pub fn new(apps: Vec<AppSpec>) -> Workload {
        Workload { apps }
    }

    /// Number of applications.
    pub fn app_count(&self) -> usize {
        self.apps.len()
    }

    /// All app ids.
    pub fn app_ids(&self) -> impl ExactSizeIterator<Item = AppId> {
        (0..self.apps.len() as u32).map(AppId)
    }

    /// One app.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of bounds.
    pub fn app(&self, id: AppId) -> &AppSpec {
        &self.apps[id.index()]
    }

    /// Iterates `(id, app)` pairs.
    pub fn apps(&self) -> impl ExactSizeIterator<Item = (AppId, &AppSpec)> {
        self.apps
            .iter()
            .enumerate()
            .map(|(i, a)| (AppId(i as u32), a))
    }

    /// Adds an app, returning its id.
    pub fn push(&mut self, app: AppSpec) -> AppId {
        let id = AppId(self.apps.len() as u32);
        self.apps.push(app);
        id
    }

    /// The pod keys of one service's replicas.
    pub fn pod_keys(&self, app: AppId, service: ServiceId) -> Vec<PodKey> {
        let replicas = self.app(app).service(service).replicas;
        (0..replicas)
            .map(|r| PodKey::new(app.0, service.0, r))
            .collect()
    }

    /// Looks up the spec behind a pod key, when valid.
    pub fn service_of_pod(&self, pod: PodKey) -> Option<(&AppSpec, &ServiceSpec)> {
        let app = self.apps.get(pod.app as usize)?;
        let svc = app.services.get(pod.service as usize)?;
        (pod.replica < svc.replicas).then_some((app, svc))
    }

    /// Total demand across all apps.
    pub fn total_demand(&self) -> Resources {
        self.apps.iter().map(AppSpec::total_demand).sum()
    }

    /// Replaces `app` with a scaled copy (see [`AppSpec::scaled`]) — the
    /// in-place form the simulator's demand-surge events use.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of bounds.
    pub fn scale_app(&mut self, app: AppId, demand_factor: f64, replica_factor: f64) {
        self.apps[app.index()] = self.apps[app.index()].scaled(demand_factor, replica_factor);
    }

    /// `true` when any app declared degraded-serving tables. Gates every
    /// mode-aware planner path, so mode-less workloads run the exact
    /// pre-modes code.
    pub fn has_modes(&self) -> bool {
        self.apps.iter().any(AppSpec::has_modes)
    }
}

/// The planner's chosen serving mode per `(app, service)` — the mode half
/// of a plan, next to the placement half ([`ActionPlan`]).
///
/// Unset slots read as [`ServingMode::Full`], so the empty assignment is
/// the correct answer for every mode-less plan.
///
/// [`ActionPlan`]: crate::actions::ActionPlan
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ModeAssignment {
    per_app: Vec<Vec<ServingMode>>,
}

impl ModeAssignment {
    /// The all-`Full` assignment (what mode-less planning produces).
    pub fn empty() -> ModeAssignment {
        ModeAssignment::default()
    }

    /// Shapes an all-`Full` assignment for `workload`.
    pub fn for_workload(workload: &Workload) -> ModeAssignment {
        ModeAssignment {
            per_app: workload
                .apps()
                .map(|(_, a)| vec![ServingMode::Full; a.service_count()])
                .collect(),
        }
    }

    /// Sets one service's chosen mode.
    ///
    /// # Panics
    ///
    /// Panics if the slot was not shaped by
    /// [`for_workload`](Self::for_workload).
    pub fn set(&mut self, app: AppId, service: ServiceId, mode: ServingMode) {
        self.per_app[app.index()][service.index()] = mode;
    }

    /// One service's chosen mode (`Full` when never set).
    pub fn get(&self, app: AppId, service: ServiceId) -> ServingMode {
        self.per_app
            .get(app.index())
            .and_then(|svcs| svcs.get(service.index()))
            .copied()
            .unwrap_or(ServingMode::Full)
    }

    /// The chosen mode of a pod's service (`Full` when never set).
    pub fn mode_of_pod(&self, pod: PodKey) -> ServingMode {
        self.get(AppId(pod.app), ServiceId(pod.service))
    }

    /// `true` when every slot is `Full` — i.e. the assignment carries no
    /// information beyond the default.
    pub fn is_all_full(&self) -> bool {
        self.per_app
            .iter()
            .all(|svcs| svcs.iter().all(|&m| m == ServingMode::Full))
    }
}

impl FromIterator<AppSpec> for Workload {
    fn from_iter<T: IntoIterator<Item = AppSpec>>(iter: T) -> Workload {
        Workload {
            apps: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_service_app() -> AppSpec {
        let mut b = AppSpecBuilder::new("t");
        let a = b.add_service("a", Resources::cpu(2.0), Some(Criticality::C1), 1);
        let c = b.add_service("c", Resources::cpu(1.0), Some(Criticality::C5), 2);
        b.add_dependency(a, c);
        b.build().unwrap()
    }

    #[test]
    fn builder_roundtrip() {
        let app = two_service_app();
        assert_eq!(app.service_count(), 2);
        assert_eq!(app.total_demand(), Resources::cpu(4.0));
        assert!(app.dependency().is_some());
        assert_eq!(app.dependency().unwrap().edge_count(), 1);
        assert_eq!(app.criticality_of(ServiceId(1)), Criticality::C5);
    }

    #[test]
    fn untagged_defaults_to_c1() {
        let mut b = AppSpecBuilder::new("u");
        b.add_service("s", Resources::cpu(1.0), None, 1);
        let app = b.build().unwrap();
        assert_eq!(app.criticality_of(ServiceId(0)), Criticality::C1);
    }

    #[test]
    fn unsubscribed_apps_fully_critical() {
        let mut b = AppSpecBuilder::new("legacy");
        b.add_service("s", Resources::cpu(1.0), Some(Criticality::new(9)), 1);
        b.phoenix_enabled(false);
        let app = b.build().unwrap();
        assert_eq!(app.criticality_of(ServiceId(0)), Criticality::C1);
    }

    #[test]
    fn demand_at_criticality_filters() {
        let app = two_service_app();
        assert_eq!(
            app.demand_at_criticality(Criticality::C1),
            Resources::cpu(2.0)
        );
        assert_eq!(
            app.demand_at_criticality(Criticality::C5),
            Resources::cpu(4.0)
        );
    }

    #[test]
    fn build_errors() {
        assert_eq!(
            AppSpecBuilder::new("e").build(),
            Err(SpecError::EmptyApp("e".into()))
        );

        let mut b = AppSpecBuilder::new("z");
        b.add_service("s", Resources::cpu(1.0), None, 0);
        assert!(matches!(b.build(), Err(SpecError::ZeroReplicas { .. })));

        let mut b = AppSpecBuilder::new("self");
        let s = b.add_service("s", Resources::cpu(1.0), None, 1);
        b.add_dependency(s, s);
        assert!(matches!(b.build(), Err(SpecError::SelfDependency { .. })));
    }

    #[test]
    fn scaled_app_multiplies_demand_and_replicas() {
        let app = two_service_app();
        let surged = app.scaled(1.5, 2.0);
        assert_eq!(surged.services()[0].demand, Resources::cpu(3.0));
        assert_eq!(surged.services()[0].replicas, 2);
        assert_eq!(surged.services()[1].replicas, 4);
        // Tags, edges, and pricing survive untouched.
        assert_eq!(surged.criticality_of(ServiceId(1)), Criticality::C5);
        assert_eq!(surged.dependency().unwrap().edge_count(), 1);
        assert_eq!(surged.price_per_unit(), app.price_per_unit());
        // Identity factors are bit-exact no-ops; the fingerprint agrees.
        let same = app.scaled(1.0, 1.0);
        assert_eq!(same, app);
        assert_eq!(same.fingerprint(), app.fingerprint());
        // Replica scaling never drops below one.
        let shrunk = app.scaled(1.0, 0.01);
        assert!(shrunk.services().iter().all(|s| s.replicas == 1));
    }

    #[test]
    fn workload_scale_app_targets_one_app() {
        let mut w = Workload::new(vec![two_service_app(), two_service_app()]);
        w.scale_app(AppId(1), 2.0, 1.0);
        assert_eq!(w.app(AppId(0)).total_demand(), Resources::cpu(4.0));
        assert_eq!(w.app(AppId(1)).total_demand(), Resources::cpu(8.0));
    }

    #[test]
    fn workload_pod_keys_and_lookup() {
        let w = Workload::new(vec![two_service_app()]);
        let keys = w.pod_keys(AppId(0), ServiceId(1));
        assert_eq!(keys.len(), 2);
        assert!(w.service_of_pod(keys[1]).is_some());
        assert!(w.service_of_pod(PodKey::new(0, 1, 5)).is_none());
        assert!(w.service_of_pod(PodKey::new(9, 0, 0)).is_none());
        assert_eq!(w.total_demand(), Resources::cpu(4.0));
    }

    fn full_ladder() -> Vec<ModeSpec> {
        vec![
            ModeSpec::new(ServingMode::Full, Resources::cpu(4.0), 1.0),
            ModeSpec::new(ServingMode::StaleCache, Resources::cpu(3.0), 0.8),
            ModeSpec::new(ServingMode::ReadOnly, Resources::cpu(2.0), 0.5),
            ModeSpec::new(ServingMode::Shed, Resources::cpu(0.5), 0.05),
        ]
    }

    fn modal_build(modes: Vec<ModeSpec>) -> Result<AppSpec, SpecError> {
        let mut b = AppSpecBuilder::new("m");
        let s = b.add_service("fe", Resources::cpu(4.0), Some(Criticality::C1), 2);
        b.service_modes(s, modes);
        b.build()
    }

    #[test]
    fn mode_table_builds_and_is_queryable() {
        let app = modal_build(full_ladder()).unwrap();
        let svc = &app.services()[0];
        assert!(svc.has_modes() && app.has_modes());
        assert_eq!(svc.mode_demand(ServingMode::ReadOnly), Resources::cpu(2.0));
        assert_eq!(svc.mode_utility(ServingMode::Shed), 0.05);
        // A mode-less service answers every mode query with its plain
        // demand and unit utility.
        let plain = two_service_app();
        assert_eq!(
            plain.services()[0].mode_demand(ServingMode::Shed),
            Resources::cpu(2.0)
        );
        assert_eq!(plain.services()[0].mode_utility(ServingMode::ReadOnly), 1.0);
        // The table is part of the structural identity.
        let modeless = modal_build(Vec::new()).unwrap();
        assert_ne!(app.fingerprint(), modeless.fingerprint());
    }

    #[test]
    fn mode_table_rejects_non_finite_demand() {
        let mut ladder = full_ladder();
        // Raw literal: `Resources::cpu` would reject NaN itself, but specs
        // can arrive from non-builder paths (deserialization).
        ladder[2].demand = Resources {
            cpu: f64::NAN,
            mem: 0.0,
        };
        assert_eq!(
            modal_build(ladder),
            Err(SpecError::ModeValueInvalid {
                app: "m".into(),
                service: "fe".into(),
                mode: ServingMode::ReadOnly,
            })
        );
    }

    #[test]
    fn mode_table_rejects_negative_demand_or_utility() {
        let mut ladder = full_ladder();
        ladder[3].utility = -0.1;
        assert!(matches!(
            modal_build(ladder),
            Err(SpecError::ModeValueInvalid {
                mode: ServingMode::Shed,
                ..
            })
        ));
        let mut ladder = full_ladder();
        ladder[1].demand = Resources {
            cpu: -1.0,
            mem: 0.0,
        };
        assert!(matches!(
            modal_build(ladder),
            Err(SpecError::ModeValueInvalid {
                mode: ServingMode::StaleCache,
                ..
            })
        ));
    }

    #[test]
    fn mode_table_rejects_non_monotone_demand() {
        let mut ladder = full_ladder();
        ladder[2].demand = Resources::cpu(3.5); // above the stale-cache rung
        assert_eq!(
            modal_build(ladder),
            Err(SpecError::ModeDemandNotMonotone {
                app: "m".into(),
                service: "fe".into(),
                mode: ServingMode::ReadOnly,
            })
        );
    }

    #[test]
    fn mode_table_rejects_duplicate_and_misordered_modes() {
        let mut ladder = full_ladder();
        ladder[2].mode = ServingMode::StaleCache; // duplicate rung
        assert!(matches!(
            modal_build(ladder),
            Err(SpecError::ModeTableOrder { .. })
        ));
        let mut ladder = full_ladder();
        ladder.swap(1, 2); // ascending-order violation
        assert!(matches!(
            modal_build(ladder),
            Err(SpecError::ModeTableOrder { .. })
        ));
        // First rung must be Full.
        let headless = full_ladder()[1..].to_vec();
        assert!(matches!(
            modal_build(headless),
            Err(SpecError::ModeTableOrder { .. })
        ));
    }

    #[test]
    fn mode_table_rejects_full_rung_demand_mismatch() {
        let mut ladder = full_ladder();
        ladder[0].demand = Resources::cpu(3.9); // != declared service demand
        assert_eq!(
            modal_build(ladder),
            Err(SpecError::ModeFullMismatch {
                app: "m".into(),
                service: "fe".into(),
            })
        );
    }

    #[test]
    fn mode_assignment_defaults_and_lookup() {
        let w = Workload::new(vec![two_service_app()]);
        let empty = ModeAssignment::empty();
        assert!(empty.is_all_full());
        assert_eq!(empty.get(AppId(0), ServiceId(1)), ServingMode::Full);
        let mut m = ModeAssignment::for_workload(&w);
        assert!(m.is_all_full());
        m.set(AppId(0), ServiceId(1), ServingMode::Shed);
        assert!(!m.is_all_full());
        assert_eq!(m.mode_of_pod(PodKey::new(0, 1, 0)), ServingMode::Shed);
        assert_eq!(m.get(AppId(0), ServiceId(0)), ServingMode::Full);
    }
}
