//! Criterion bench: the Algorithm-2 packing heuristic under the three fit
//! strategies (ablation for the scheduler's packing efficiency, Fig. 8c),
//! plus the sharded driver at several shard counts (`--threads N` sizes
//! the pool; outputs are asserted byte-identical before timing).

use criterion::{criterion_group, BenchmarkId, Criterion};
use phoenix_cluster::packing::{pack, pack_sharded, FitStrategy, PackingConfig, PlannedPod};
use phoenix_cluster::{ClusterState, PodKey, Resources};
use phoenix_core::controller::PoolShardRunner;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn plan_of(pods: usize, seed: u64) -> Vec<PlannedPod> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..pods)
        .map(|i| {
            PlannedPod::new(
                PodKey::new(0, i as u32, 0),
                Resources::cpu(rng.gen_range(0.5..8.0)),
            )
        })
        .collect()
}

fn bench_packing(c: &mut Criterion) {
    let mut group = c.benchmark_group("packing");
    group.sample_size(20);
    let plan = plan_of(2000, 3);
    for fit in [
        FitStrategy::BestFit,
        FitStrategy::FirstFit,
        FitStrategy::WorstFit,
    ] {
        group.bench_with_input(
            BenchmarkId::new("fit", format!("{fit:?}")),
            &fit,
            |b, &fit| {
                b.iter(|| {
                    let mut state = ClusterState::homogeneous(200, Resources::cpu(64.0));
                    pack(
                        &mut state,
                        &plan,
                        &PackingConfig {
                            fit,
                            ..PackingConfig::default()
                        },
                    )
                })
            },
        );
    }
    group.finish();
}

fn bench_sharded(c: &mut Criterion) {
    let mut group = c.benchmark_group("packing_sharded");
    group.sample_size(20);
    let plan = plan_of(2000, 3);
    let pool = phoenix_exec::global();
    let runner = PoolShardRunner(pool);
    // Correctness guard before timing: the sharded outcome must equal the
    // sequential pack byte-for-byte.
    let mut seq_state = ClusterState::homogeneous(200, Resources::cpu(64.0));
    let seq = pack(&mut seq_state, &plan, &PackingConfig::default());
    for shards in [0usize, 4, 16] {
        let cfg = PackingConfig {
            shards,
            ..PackingConfig::default()
        };
        let mut check = ClusterState::homogeneous(200, Resources::cpu(64.0));
        let out = pack_sharded(&mut check, &plan, &cfg, &runner);
        assert_eq!(out.starts, seq.starts, "sharded divergence at {shards}");
        assert_eq!(out.unplaced, seq.unplaced);
        group.bench_with_input(BenchmarkId::new("shards", shards), &shards, |b, &shards| {
            let cfg = PackingConfig {
                shards,
                ..PackingConfig::default()
            };
            b.iter(|| {
                let mut state = ClusterState::homogeneous(200, Resources::cpu(64.0));
                pack_sharded(&mut state, &plan, &cfg, &runner)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_packing, bench_sharded);
// Expanded `criterion_main!` so the harness honours the standard
// `--threads N` flag (and `PHOENIX_THREADS`) before any group runs.
fn main() {
    phoenix_bench::init_threads();
    benches();
}
