//! An ordered multiset over node remaining-capacity, the Rust counterpart
//! of the Python `SortedList` the reference implementation uses for
//! faster-than-linear best-fit queries.

use std::collections::BTreeSet;
use std::fmt;

use crate::state::NodeId;

/// A total-ordering wrapper for `f64` keys.
///
/// Ordering is [`f64::total_cmp`], so even a degenerate NaN key (a
/// corrupted capacity mid-incident) orders deterministically — positive
/// NaN above `+∞` — instead of panicking the scheduler. Note that
/// `total_cmp` distinguishes `-0.0 < +0.0`; capacities are non-negative,
/// so in practice keys behave exactly like the old finite-only ordering.
#[derive(Debug, Clone, Copy)]
pub struct OrderedF64(f64);

impl OrderedF64 {
    /// Wraps a float.
    pub fn new(v: f64) -> OrderedF64 {
        OrderedF64(v)
    }

    /// The wrapped value.
    pub fn get(self) -> f64 {
        self.0
    }
}

impl PartialEq for OrderedF64 {
    fn eq(&self, other: &OrderedF64) -> bool {
        self.cmp(other) == std::cmp::Ordering::Equal
    }
}

impl Eq for OrderedF64 {}

impl PartialOrd for OrderedF64 {
    fn partial_cmp(&self, other: &OrderedF64) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrderedF64 {
    fn cmp(&self, other: &OrderedF64) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

impl fmt::Display for OrderedF64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Ordered multiset of `(remaining capacity, node)` supporting O(log n)
/// best-fit (smallest remaining ≥ demand) and worst-fit (largest remaining)
/// queries, with iteration in either direction.
///
/// Keys are kept internally so updates only need the node id.
///
/// # Examples
///
/// ```
/// use phoenix_cluster::{NodeId, SortedNodes};
///
/// let mut s = SortedNodes::new();
/// s.insert(NodeId::new(0), 4.0);
/// s.insert(NodeId::new(1), 8.0);
/// s.insert(NodeId::new(2), 6.0);
/// assert_eq!(s.best_fit(5.0), Some(NodeId::new(2)));
/// assert_eq!(s.worst_fit(), Some(NodeId::new(1)));
/// s.update(NodeId::new(2), 1.0);
/// assert_eq!(s.best_fit(5.0), Some(NodeId::new(1)));
/// ```
#[derive(Debug, Clone, Default)]
pub struct SortedNodes {
    set: BTreeSet<(OrderedF64, NodeId)>,
    key_of: Vec<Option<f64>>,
}

impl SortedNodes {
    /// Creates an empty set.
    pub fn new() -> SortedNodes {
        SortedNodes::default()
    }

    /// Number of tracked nodes.
    pub fn len(&self) -> usize {
        self.set.len()
    }

    /// `true` when no nodes are tracked.
    pub fn is_empty(&self) -> bool {
        self.set.is_empty()
    }

    /// Inserts (or re-keys) `node` with the given remaining capacity.
    pub fn insert(&mut self, node: NodeId, remaining: f64) {
        let idx = node.index();
        if idx >= self.key_of.len() {
            self.key_of.resize(idx + 1, None);
        }
        if let Some(old) = self.key_of[idx] {
            self.set.remove(&(OrderedF64::new(old), node));
        }
        self.key_of[idx] = Some(remaining);
        self.set.insert((OrderedF64::new(remaining), node));
    }

    /// Updates the key of an already-tracked node (alias of [`insert`]).
    ///
    /// [`insert`]: SortedNodes::insert
    pub fn update(&mut self, node: NodeId, remaining: f64) {
        self.insert(node, remaining);
    }

    /// Removes `node`; returns its key if it was tracked.
    pub fn remove(&mut self, node: NodeId) -> Option<f64> {
        let idx = node.index();
        let old = self.key_of.get_mut(idx)?.take()?;
        self.set.remove(&(OrderedF64::new(old), node));
        Some(old)
    }

    /// Current key of `node`, when tracked.
    pub fn key(&self, node: NodeId) -> Option<f64> {
        self.key_of.get(node.index()).copied().flatten()
    }

    /// Best-fit query: the tracked node with the *smallest* remaining
    /// capacity that is still ≥ `demand`.
    pub fn best_fit(&self, demand: f64) -> Option<NodeId> {
        self.set
            .range((OrderedF64::new(demand - 1e-9), NodeId::new(0))..)
            .next()
            .map(|&(_, n)| n)
    }

    /// All candidates ≥ `demand`, smallest remaining first (for
    /// two-dimensional fit checks that may reject the first candidate).
    pub fn best_fit_candidates(&self, demand: f64) -> impl Iterator<Item = NodeId> + '_ {
        self.set
            .range((OrderedF64::new(demand - 1e-9), NodeId::new(0))..)
            .map(|&(_, n)| n)
    }

    /// Worst-fit query: the node with the largest remaining capacity.
    pub fn worst_fit(&self) -> Option<NodeId> {
        self.set.iter().next_back().map(|&(_, n)| n)
    }

    /// Iterates nodes from most to least remaining capacity.
    pub fn iter_desc(&self) -> impl Iterator<Item = (NodeId, f64)> + '_ {
        self.set.iter().rev().map(|&(k, n)| (n, k.get()))
    }

    /// Iterates nodes from least to most remaining capacity.
    pub fn iter_asc(&self) -> impl Iterator<Item = (NodeId, f64)> + '_ {
        self.set.iter().map(|&(k, n)| (n, k.get()))
    }

    /// Iterates tracked nodes in ascending node-id order.
    ///
    /// This is the first-fit scan order: O(1) per node visited, so a
    /// caller can stop at the first fit instead of materializing every
    /// candidate.
    pub fn iter_by_id(&self) -> impl Iterator<Item = (NodeId, f64)> + '_ {
        self.key_of
            .iter()
            .enumerate()
            .filter_map(|(i, k)| k.map(|k| (NodeId::new(i as u32), k)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn best_fit_picks_tightest() {
        let mut s = SortedNodes::new();
        s.insert(n(0), 10.0);
        s.insert(n(1), 3.0);
        s.insert(n(2), 5.0);
        assert_eq!(s.best_fit(4.0), Some(n(2)));
        assert_eq!(s.best_fit(0.5), Some(n(1)));
        assert_eq!(s.best_fit(11.0), None);
    }

    #[test]
    fn exact_fit_included() {
        let mut s = SortedNodes::new();
        s.insert(n(0), 4.0);
        assert_eq!(s.best_fit(4.0), Some(n(0)));
    }

    #[test]
    fn update_rekeys() {
        let mut s = SortedNodes::new();
        s.insert(n(0), 4.0);
        s.insert(n(1), 9.0);
        s.update(n(1), 1.0);
        assert_eq!(s.best_fit(2.0), Some(n(0)));
        assert_eq!(s.key(n(1)), Some(1.0));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn remove_untracks() {
        let mut s = SortedNodes::new();
        s.insert(n(0), 4.0);
        assert_eq!(s.remove(n(0)), Some(4.0));
        assert_eq!(s.remove(n(0)), None);
        assert!(s.is_empty());
        assert_eq!(s.best_fit(1.0), None);
    }

    #[test]
    fn duplicate_keys_coexist() {
        let mut s = SortedNodes::new();
        s.insert(n(0), 5.0);
        s.insert(n(1), 5.0);
        s.insert(n(2), 5.0);
        assert_eq!(s.len(), 3);
        let all: Vec<_> = s.best_fit_candidates(5.0).collect();
        assert_eq!(all, vec![n(0), n(1), n(2)]);
    }

    #[test]
    fn iteration_orders() {
        let mut s = SortedNodes::new();
        s.insert(n(0), 2.0);
        s.insert(n(1), 8.0);
        s.insert(n(2), 4.0);
        let desc: Vec<_> = s.iter_desc().map(|(node, _)| node).collect();
        assert_eq!(desc, vec![n(1), n(2), n(0)]);
        let asc: Vec<_> = s.iter_asc().map(|(node, _)| node).collect();
        assert_eq!(asc, vec![n(0), n(2), n(1)]);
        assert_eq!(s.worst_fit(), Some(n(1)));
    }

    #[test]
    fn id_order_iteration_skips_untracked() {
        let mut s = SortedNodes::new();
        s.insert(n(3), 2.0);
        s.insert(n(0), 8.0);
        s.insert(n(1), 4.0);
        s.remove(n(1));
        let by_id: Vec<_> = s.iter_by_id().collect();
        assert_eq!(by_id, vec![(n(0), 8.0), (n(3), 2.0)]);
    }

    #[test]
    fn nan_key_is_deterministic_not_fatal() {
        // A corrupted capacity must degrade deterministically: the NaN key
        // sorts above +∞ (total order), stays re-keyable, and never panics.
        let mut s = SortedNodes::new();
        s.insert(n(0), f64::NAN);
        s.insert(n(1), 4.0);
        assert_eq!(s.worst_fit(), Some(n(0)));
        assert_eq!(s.best_fit(2.0), Some(n(1)));
        s.update(n(0), 1.0);
        assert_eq!(s.worst_fit(), Some(n(1)));
        assert_eq!(s.len(), 2);
        assert_eq!(s.remove(n(0)), Some(1.0));
    }
}
