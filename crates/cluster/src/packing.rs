//! The Phoenix scheduler's packing module (paper Algorithm 2, Appendix B).
//!
//! Given the planner's globally-ranked list of microservices, map each one
//! to a healthy server with a three-pronged strategy:
//!
//! 1. **Best-fit** — the node with the smallest remaining capacity that
//!    still accommodates the demand;
//! 2. **Repack** — if nothing fits, pick an emptyish node and migrate its
//!    smallest pods elsewhere until the demand fits;
//! 3. **Delete-lower-ranks** — as a last resort, delete currently running
//!    pods in reverse rank order (lowest priority first) until space opens.
//!
//! All work happens on a scratch [`ClusterState`] copy owned by the caller;
//! enforcement is the agent's job (§4.2).
//!
//! # Sharded packing
//!
//! [`pack_sharded`] / [`pack_prepared_sharded`] run the same algorithm
//! with the step-1 fit scans fanned out over contiguous node shards
//! ([`ShardLayout`]), producing **byte-identical** output for every shard
//! count, chunk size, and [`ShardRunner`]:
//!
//! * the plan is walked in rank-ordered chunks; at each chunk boundary
//!   the cluster state is *frozen* and every shard computes, in parallel,
//!   its local fit proposal for each pending pod of the chunk;
//! * a sequential **ordered merge** then visits the chunk in rank order,
//!   combining the per-shard proposals into the exact node the global
//!   scan would have picked (for every fit strategy, the global winner is
//!   the extremum over per-shard first-fits);
//! * every mutation — placements, repack migrations, delete-lower-ranks
//!   victims — marks the touched shards *dirty*, and the merge replays
//!   the fit of any pod whose proposal a dirty shard invalidated against
//!   live shard state (mirroring how `ReplanCache` replays invalidated
//!   prefixes). Repack and victim bookkeeping themselves run sequentially
//!   on the authoritative global state through the very same code path as
//!   the sequential driver, so shard-crossing work cannot diverge.

use std::collections::BTreeSet;

use phoenix_obs::{Counter, Phase, Recorder};

use crate::shard::{ShardLayout, ShardProposals, ShardRunner};
use crate::{ClusterState, FxHashMap, NodeId, OrderedF64, PodKey, Resources, SortedNodes};

/// One entry of the planner's globally-ranked list.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlannedPod {
    /// The container to activate.
    pub key: PodKey,
    /// Its resource demand.
    pub demand: Resources,
}

impl PlannedPod {
    /// Creates a planned pod.
    pub fn new(key: PodKey, demand: Resources) -> PlannedPod {
        PlannedPod { key, demand }
    }
}

/// Node-selection strategy for the fit step (ablation knob; the paper uses
/// best-fit).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FitStrategy {
    /// Smallest remaining capacity that fits (paper default).
    #[default]
    BestFit,
    /// Lowest node id that fits (classic first-fit).
    FirstFit,
    /// Largest remaining capacity (Kubernetes' least-allocated spreading).
    WorstFit,
}

/// Packing configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct PackingConfig {
    /// Fit strategy for step 1.
    pub fit: FitStrategy,
    /// Enable the migration/repack step.
    pub enable_migration: bool,
    /// Maximum pods moved per repack attempt.
    pub max_migration_moves: usize,
    /// Maximum candidate source nodes examined per repack attempt.
    pub max_migration_nodes: usize,
    /// Abort the whole pack on the first unplaceable pod (the paper's
    /// Algorithm 2 returns `None`); when `false`, skip and continue.
    pub strict: bool,
    /// Per-node pod-count cap — the "per-node microservice limits imposed
    /// by underlying cluster schedulers" the paper lists as an operator
    /// constraint (§4); Kubernetes ships with `max-pods = 110`. `None`
    /// disables the check.
    pub max_pods_per_node: Option<usize>,
    /// Number of contiguous node shards the sharded drivers
    /// ([`pack_sharded`] / [`pack_prepared_sharded`]) fan the step-1 fit
    /// scans over; `0` or `1` keeps packing strictly sequential, and
    /// [`AUTO_SHARDS`](Self::AUTO_SHARDS) defers the choice to
    /// [`resolve_shards`](Self::resolve_shards) at plan time. Output is
    /// byte-identical either way — this knob only moves wall-clock.
    pub shards: usize,
    /// Plan pods per speculation chunk on the sharded path (`0` derives
    /// a chunk from plan length and shard count). Any value produces
    /// identical output; it only tunes the freeze/merge cadence.
    pub shard_chunk: usize,
    /// Re-book running pods whose planned demand differs from their live
    /// booking (serving-mode shifts). Off, a running pod keeps its old
    /// booking untouched — the historical contract mode-less plans are
    /// pinned to. On, such a pod is re-booked in place when it still
    /// fits, and otherwise re-enters the fit/repack/victim flow like a
    /// self-victimized pod (same node ⇒ keep, elsewhere ⇒ migration).
    pub rebook_in_place: bool,
}

impl Default for PackingConfig {
    fn default() -> PackingConfig {
        PackingConfig {
            fit: FitStrategy::BestFit,
            enable_migration: true,
            max_migration_moves: 8,
            max_migration_nodes: 8,
            strict: false,
            max_pods_per_node: None,
            shards: 0,
            shard_chunk: 0,
            rebook_in_place: false,
        }
    }
}

impl PackingConfig {
    /// Sentinel for [`shards`](Self::shards): pick the shard count at plan
    /// time from the cluster size and pool width instead of hard-coding it.
    pub const AUTO_SHARDS: usize = usize::MAX;

    /// Smallest cluster auto-sharding considers worth the freeze/propose/
    /// merge overhead. On small clusters sharding *costs* wall-clock
    /// (0.88–0.93× in `BENCH_planner.json`); the fit scans only amortize
    /// the coordination once they walk thousands of nodes.
    pub const AUTO_SHARDS_MIN_NODES: usize = 4096;

    /// Resolves [`shards`](Self::shards) against a concrete cluster and
    /// pool width. Explicit shard counts (anything but
    /// [`AUTO_SHARDS`](Self::AUTO_SHARDS)) pass through untouched.
    /// `AUTO_SHARDS` picks `threads` shards when
    /// `nodes >= AUTO_SHARDS_MIN_NODES && threads > 1`, and `0`
    /// (sequential) otherwise. The choice is output-safe either way:
    /// sharded packing is byte-identical to sequential by the
    /// ordered-merge contract, so auto-tuning only moves wall-clock.
    pub fn resolve_shards(&self, nodes: usize, threads: usize) -> usize {
        if self.shards != Self::AUTO_SHARDS {
            return self.shards;
        }
        if nodes >= Self::AUTO_SHARDS_MIN_NODES && threads > 1 {
            threads
        } else {
            0
        }
    }
}

/// Result of a packing run: the target state and the actions that reach it.
#[derive(Debug, Clone, Default)]
pub struct PackOutcome {
    /// Pods deleted (pre-existing pods turned off, including plan victims).
    pub deletions: Vec<PodKey>,
    /// Pods migrated between healthy nodes: `(pod, from, to)`.
    pub migrations: Vec<(PodKey, NodeId, NodeId)>,
    /// Pods newly started: `(pod, node)`.
    pub starts: Vec<(PodKey, NodeId)>,
    /// Planned pods that could not be placed.
    pub unplaced: Vec<PodKey>,
    /// `true` when `strict` mode aborted mid-plan.
    pub aborted: bool,
}

impl PackOutcome {
    /// Number of actions of all kinds.
    pub fn action_count(&self) -> usize {
        self.deletions.len() + self.migrations.len() + self.starts.len()
    }
}

/// Packs the planner's ranked `plan` into `state` (mutated in place).
///
/// Pods currently assigned but absent from the plan are deleted first —
/// that is the diagonal-scaling step. Remaining plan entries are placed in
/// rank order with the three-pronged strategy.
pub fn pack(state: &mut ClusterState, plan: &[PlannedPod], cfg: &PackingConfig) -> PackOutcome {
    let rank_of: FxHashMap<PodKey, usize> =
        plan.iter().enumerate().map(|(i, p)| (p.key, i)).collect();
    pack_prepared(state, plan, cfg, |p| rank_of.get(&p).copied())
}

/// [`pack`] with a caller-supplied `pod key → plan index` lookup.
///
/// Warm replanning (`phoenix_core::replan`) passes a dense
/// workload-shaped table here instead of a freshly built hash map, so
/// steady rounds skip the O(pods) map construction and pay array reads in
/// the membership scans. `rank_of` **must** return exactly `Some(i)` for
/// `plan[i].key` and `None` for every other pod; anything else loses the
/// byte-identical-to-[`pack`] guarantee.
///
/// # Panics
///
/// Panics (in debug builds) when `rank_of` disagrees with `plan`, and in
/// all builds when it returns `None` for an assigned planned pod.
pub fn pack_prepared(
    state: &mut ClusterState,
    plan: &[PlannedPod],
    cfg: &PackingConfig,
    rank_of: impl Fn(PodKey) -> Option<usize>,
) -> PackOutcome {
    debug_assert!(plan
        .iter()
        .enumerate()
        .all(|(i, p)| rank_of(p.key) == Some(i)));
    let mut out = PackOutcome::default();
    drop_unplanned(state, &rank_of, &mut out);
    let mut book = NodeBook::new(state, None);
    let mut ctx = PackCtx {
        obs: phoenix_obs::global(),
        ..PackCtx::default()
    };
    place_range(
        state,
        plan,
        cfg,
        &rank_of,
        &mut book,
        &mut ctx,
        &mut out,
        0..plan.len(),
        |state, book, _, demand| try_fit(state, &book.sorted, demand, cfg),
    );
    out
}

/// [`pack`] on the sharded path: contiguous node shards compute fit
/// proposals for rank-ordered plan chunks through `runner` (the parallel
/// phase), and a sequential ordered merge applies them — replaying any
/// pod whose shard-local proposal a mutation invalidated. Byte-identical
/// to [`pack`] for every shard count, chunk size, and runner (see the
/// [module docs](self) for the contract and the equivalence property
/// tests for the proof-by-fire).
pub fn pack_sharded(
    state: &mut ClusterState,
    plan: &[PlannedPod],
    cfg: &PackingConfig,
    runner: &dyn ShardRunner,
) -> PackOutcome {
    let rank_of: FxHashMap<PodKey, usize> =
        plan.iter().enumerate().map(|(i, p)| (p.key, i)).collect();
    pack_prepared_sharded(state, plan, cfg, |p| rank_of.get(&p).copied(), runner)
}

/// [`pack_prepared`] on the sharded path (see [`pack_sharded`]); the
/// `rank_of` contract is the same as [`pack_prepared`]'s.
///
/// With `cfg.shards <= 1` (or a cluster smaller than two shards) this
/// delegates to the sequential driver without touching `runner`.
///
/// # Panics
///
/// As [`pack_prepared`].
pub fn pack_prepared_sharded(
    state: &mut ClusterState,
    plan: &[PlannedPod],
    cfg: &PackingConfig,
    rank_of: impl Fn(PodKey) -> Option<usize>,
    runner: &dyn ShardRunner,
) -> PackOutcome {
    // An unresolved AUTO_SHARDS sentinel (callers normally resolve it at
    // plan level, where the pool width is known) falls back to sequential
    // rather than exploding into one shard per node.
    let shards = if cfg.shards == PackingConfig::AUTO_SHARDS {
        0
    } else {
        cfg.shards.min(state.node_count())
    };
    if shards <= 1 {
        return pack_prepared(state, plan, cfg, rank_of);
    }
    debug_assert!(plan
        .iter()
        .enumerate()
        .all(|(i, p)| rank_of(p.key) == Some(i)));
    let mut out = PackOutcome::default();
    drop_unplanned(state, &rank_of, &mut out);
    let layout = ShardLayout::new(state.node_count(), shards);
    let mut book = NodeBook::new(state, Some(layout));
    let mut ctx = PackCtx {
        obs: phoenix_obs::global(),
        ..PackCtx::default()
    };
    let chunk = if cfg.shard_chunk > 0 {
        cfg.shard_chunk
    } else {
        auto_chunk(plan.len(), shards)
    };

    // Tournament scratch, reused across every placement of the pack so
    // the merge allocates once, not once per pod.
    let mut scratch: Vec<(OrderedF64, NodeId)> = Vec::with_capacity(shards);
    let mut start = 0usize;
    while start < plan.len() {
        let end = plan.len().min(start + chunk);
        // Freeze: the chunk's pods that are not currently running. Pods
        // running at the freeze either stay in place (the common case) or
        // are victimized mid-chunk and replayed against live shard state.
        let pending: Vec<usize> = (start..end)
            .filter(|&i| state.node_of(plan[i].key).is_none())
            .collect();
        // A chunk is *convergent* when the merge could only skip every
        // pod in it: each is running, and — under `rebook_in_place` —
        // already booked at its planned demand. (A running pod whose
        // demand changed carries no frozen proposal; the merge replays
        // it against live shard state, exactly like a mid-chunk victim.)
        let convergent = pending.is_empty()
            && (!cfg.rebook_in_place
                || (start..end).all(|i| state.demand_of(plan[i].key) == Some(plan[i].demand)));
        if convergent {
            // Nothing is placed, nothing is victimized (victims come
            // from placements), and the shard fan-out would produce
            // empty proposal vectors. This is the common warm-replan
            // case — whole chunks of the plan already converged — so
            // skip the dispatch entirely.
            ctx.obs.incr(Counter::PackConvergentSkips);
            start = end;
            continue;
        }
        let mut pend_of: Vec<Option<usize>> = vec![None; end - start];
        for (row, &i) in pending.iter().enumerate() {
            pend_of[i - start] = Some(row);
        }
        // Parallel speculation: every shard proposes its local fit for
        // each pending pod against the frozen state. Pure reads — the
        // runner may schedule them on any threads in any order.
        let proposals: Vec<ShardProposals> = {
            let frozen: &ClusterState = state;
            let mirror = book.shards.as_ref().expect("sharded book");
            runner.run_shards(shards, &|s| {
                pending
                    .iter()
                    .map(|&i| try_fit(frozen, &mirror.sorted[s], plan[i].demand, cfg))
                    .collect()
            })
        };
        ctx.obs
            .add(Counter::PackShardProposals, (pending.len() * shards) as u64);
        book.clear_dirty();
        // Ordered merge: walk the chunk in rank order, combining frozen
        // proposals from still-clean shards and replaying dirty ones.
        // (The guard borrows a clone of the handle so `ctx` stays free
        // for the merge to borrow mutably.)
        let merge_obs = ctx.obs.clone();
        let _merge_timer = merge_obs.phase(Phase::Merge);
        let aborted = place_range(
            state,
            plan,
            cfg,
            &rank_of,
            &mut book,
            &mut ctx,
            &mut out,
            start..end,
            |state, book, rank, demand| {
                merged_fit(
                    state,
                    book,
                    cfg,
                    demand,
                    pend_of[rank - start],
                    &proposals,
                    &mut scratch,
                    &merge_obs,
                )
            },
        );
        if aborted {
            break;
        }
        start = end;
    }
    out
}

/// Default speculation chunk: a handful of chunks per shard keeps the
/// merge replaying few stale shards while the freeze/fan-out overhead
/// stays invisible. Any value is output-identical.
fn auto_chunk(plan_len: usize, shards: usize) -> usize {
    plan_len.div_ceil(shards.max(1) * 4).clamp(32, 4096)
}

/// Step 0: diagonal scaling — drop running pods the plan turned off.
fn drop_unplanned(
    state: &mut ClusterState,
    rank_of: &impl Fn(PodKey) -> Option<usize>,
    out: &mut PackOutcome,
) {
    let to_drop: Vec<PodKey> = state
        .assignments()
        .filter(|&(p, _, _)| rank_of(p).is_none())
        .map(|(p, _, _)| p)
        .collect();
    for p in to_drop {
        state.remove(p).expect("pod listed in assignments");
        out.deletions.push(p);
    }
}

/// The packing loop's node-capacity bookkeeping: the authoritative
/// global [`SortedNodes`] plus, on the sharded path, per-shard mirrors
/// with dirty-since-freeze flags. Every capacity mutation funnels
/// through [`NodeBook::update`], so the sequential and sharded drivers
/// mutate in lockstep by construction.
struct NodeBook {
    sorted: SortedNodes,
    shards: Option<ShardMirror>,
}

struct ShardMirror {
    layout: ShardLayout,
    /// One [`SortedNodes`] per shard, holding only that shard's healthy
    /// nodes (keys stay current — mirrors are updated with the global
    /// set, dirtiness only tracks changes since the last chunk freeze).
    sorted: Vec<SortedNodes>,
    dirty: Vec<bool>,
}

impl NodeBook {
    fn new(state: &ClusterState, layout: Option<ShardLayout>) -> NodeBook {
        let mut sorted = SortedNodes::new();
        let mut shards = layout.map(|layout| ShardMirror {
            sorted: vec![SortedNodes::new(); layout.count()],
            dirty: vec![false; layout.count()],
            layout,
        });
        for n in state.healthy_nodes() {
            let key = state.remaining(n).scalar();
            sorted.insert(n, key);
            if let Some(m) = shards.as_mut() {
                m.sorted[m.layout.shard_of(n)].insert(n, key);
            }
        }
        NodeBook { sorted, shards }
    }

    fn update(&mut self, node: NodeId, remaining: f64) {
        self.sorted.update(node, remaining);
        if let Some(m) = self.shards.as_mut() {
            let s = m.layout.shard_of(node);
            m.sorted[s].update(node, remaining);
            m.dirty[s] = true;
        }
    }

    fn clear_dirty(&mut self) {
        if let Some(m) = self.shards.as_mut() {
            m.dirty.iter_mut().for_each(|d| *d = false);
        }
    }
}

/// Cross-pod bookkeeping shared by the sequential and sharded drivers.
#[derive(Default)]
struct PackCtx {
    /// Observability handle, grabbed once per pack (the default is the
    /// disabled recorder). Counters recorded here are per-*event* in the
    /// sequential merge order, so they are identical for every runner.
    obs: Recorder,
    /// Active planned pods, ordered by rank (for the deletion fallback).
    /// Built lazily on the first fallback: rounds with enough capacity —
    /// the common case, and every warm replan after a small failure —
    /// never pay the O(pods · log pods) set construction.
    active: Option<BTreeSet<(usize, PodKey)>>,
    /// Original node of every pre-existing pod the deletion fallback
    /// victimized this pack: consulted on re-placement to collapse the
    /// delete + start pair into a keep or a migration.
    victim_origin: FxHashMap<PodKey, NodeId>,
}

/// Places `plan[range]` with the three-pronged strategy, appending to
/// `out`. `fit` computes step 1 — the sequential driver scans the global
/// sorted set, the sharded driver merges per-shard proposals — while
/// repack and the deletion fallback run identically in both. Returns
/// `true` when strict mode aborted.
#[allow(clippy::too_many_arguments)]
fn place_range(
    state: &mut ClusterState,
    plan: &[PlannedPod],
    cfg: &PackingConfig,
    rank_of: &impl Fn(PodKey) -> Option<usize>,
    book: &mut NodeBook,
    ctx: &mut PackCtx,
    out: &mut PackOutcome,
    range: std::ops::Range<usize>,
    mut fit: impl FnMut(&ClusterState, &NodeBook, usize, Resources) -> Option<NodeId>,
) -> bool {
    for rank in range {
        let planned = &plan[rank];
        let mut in_place = None;
        if state.node_of(planned.key).is_some() {
            let booked = state
                .demand_of(planned.key)
                .expect("assigned pod has demand");
            if !cfg.rebook_in_place || booked == planned.demand {
                continue; // already running; keep in place
            }
            // Serving-mode rebook: free the old booking and re-place at
            // the planned demand, preferring the pod's own node so a
            // shrink (or a grow that still fits) never moves it. A grow
            // that no longer fits re-enters the regular flow as a
            // self-victimization: same node ⇒ keep, elsewhere ⇒
            // migration, nowhere ⇒ the delete stands.
            let (from, _) = state.remove(planned.key).expect("pod is assigned");
            book.update(from, state.remaining(from).scalar());
            if let Some(active) = ctx.active.as_mut() {
                active.remove(&(rank, planned.key));
            }
            ctx.victim_origin.insert(planned.key, from);
            out.deletions.push(planned.key);
            if fits_node(state, cfg, from, planned.demand) {
                in_place = Some(from);
            }
        }
        let mut target = in_place.or_else(|| fit(state, book, rank, planned.demand));
        if target.is_none() && cfg.enable_migration {
            let migrations_before = out.migrations.len();
            target = repack_to_fit(state, book, planned.demand, cfg, out);
            ctx.obs.add(
                Counter::PackRepackMigrations,
                (out.migrations.len() - migrations_before) as u64,
            );
        }
        while target.is_none() {
            let active = ctx.active.get_or_insert_with(|| {
                state
                    .assignments()
                    .map(|(p, _, _)| (rank_of(p).expect("assigned pod is planned"), p))
                    .collect()
            });
            // Delete the lowest-priority active pod that ranks below us.
            let Some(&(victim_rank, victim)) = active.iter().next_back() else {
                break;
            };
            if victim_rank <= rank {
                break;
            }
            active.remove(&(victim_rank, victim));
            let (node, _) = state.remove(victim).expect("victim is assigned");
            book.update(node, state.remaining(node).scalar());
            ctx.obs.incr(Counter::PackVictimDeletes);
            // The victim may have been started earlier in this very pack; a
            // start followed by a delete collapses to "never started".
            if let Some(pos) = out.starts.iter().position(|&(p, _)| p == victim) {
                out.starts.swap_remove(pos);
            } else {
                out.deletions.push(victim);
                ctx.victim_origin.insert(victim, node);
            }
            target = fit(state, book, rank, planned.demand);
        }
        match target {
            Some(node) => {
                state
                    .assign(planned.key, planned.demand, node)
                    .expect("fit was just verified");
                book.update(node, state.remaining(node).scalar());
                ctx.obs.incr(Counter::PackPlacements);
                if let Some(active) = ctx.active.as_mut() {
                    active.insert((rank, planned.key));
                }
                match ctx.victim_origin.remove(&planned.key) {
                    // A pre-existing pod victimized earlier this pack and
                    // re-placed at its own rank: reporting the delete +
                    // start pair would make the agent restart a running
                    // pod (exactly what cooperative degradation forbids).
                    // Collapse it — back on its old node it is a keep,
                    // elsewhere a migration.
                    Some(from) => {
                        let pos = out
                            .deletions
                            .iter()
                            .position(|&p| p == planned.key)
                            .expect("victimized pod was recorded deleted");
                        out.deletions.swap_remove(pos);
                        if from != node {
                            out.migrations.push((planned.key, from, node));
                        }
                    }
                    None => out.starts.push((planned.key, node)),
                }
            }
            None => {
                out.unplaced.push(planned.key);
                if cfg.strict {
                    out.aborted = true;
                    return true;
                }
            }
        }
    }
    false
}

/// Step 1 on the sharded path: the node the global scan would pick,
/// reconstructed from per-shard first-fits. Clean shards reuse the
/// frozen proposal row (`frozen_row`, absent for pods that were running
/// at the freeze); dirty shards — and every shard of a proposal-less pod
/// — replay [`try_fit`] against their live mirror.
#[allow(clippy::too_many_arguments)]
fn merged_fit(
    state: &ClusterState,
    book: &NodeBook,
    cfg: &PackingConfig,
    demand: Resources,
    frozen_row: Option<usize>,
    proposals: &[ShardProposals],
    scratch: &mut Vec<(OrderedF64, NodeId)>,
    obs: &Recorder,
) -> Option<NodeId> {
    let mirror = book.shards.as_ref().expect("sharded book");
    // Reuse/replay counts are per consulted shard in the sequential
    // merge order — runner-independent, so deterministic-plane safe.
    let shard_candidate = |s: usize| match frozen_row {
        Some(row) if !mirror.dirty[s] => {
            obs.incr(Counter::PackFrozenReuses);
            proposals[s][row]
        }
        _ => {
            obs.incr(Counter::PackDirtyReplays);
            try_fit(state, &mirror.sorted[s], demand, cfg)
        }
    };
    if cfg.fit == FitStrategy::FirstFit {
        // Shards are contiguous ascending id ranges, so the first shard
        // with a fit holds the globally lowest-id fitting node — later
        // shards need not even be consulted.
        return (0..mirror.sorted.len()).find_map(shard_candidate);
    }
    // The global best (worst) fit is the smallest (largest) (key, id)
    // among the shards' local best fits: every candidate ordered before a
    // shard's first fit does not fit, in any shard. Gather the per-shard
    // candidates in shard order (into the caller's reused scratch — no
    // per-placement allocation), then reduce them in a tournament.
    scratch.clear();
    scratch.extend((0..mirror.sorted.len()).filter_map(|s| {
        shard_candidate(s).map(|node| {
            (
                OrderedF64::new(mirror.sorted[s].key(node).expect("candidate is tracked")),
                node,
            )
        })
    }));
    tournament_extremum(scratch, cfg.fit == FitStrategy::WorstFit).map(|(_, n)| n)
}

/// Pairwise tournament over the per-shard fit candidates in `round`:
/// each round plays adjacent pairs and advances the winner (the smaller
/// `(key, id)` for best-fit, the larger for worst-fit; an odd straggler
/// gets a bye), compacting **in place** into the buffer's prefix — the
/// whole bracket is `n − 1` comparisons and zero allocation (the caller
/// reuses one scratch buffer across the pack). The buffer's contents are
/// scrapped, not restored.
///
/// Byte-identical to the linear running-extremum scan it replaced: node
/// ids are unique, so the `(key, id)` pairs are strictly totally ordered
/// and the extremum is the same element under **any** reduction tree.
/// What the bracket buys is comparison-dependency depth — ⌈log₂ s⌉
/// rounds of independent pairings instead of an `s`-long serial chain
/// through one accumulator — which trims the merge constant at large
/// shard counts.
fn tournament_extremum(
    round: &mut [(OrderedF64, NodeId)],
    prefer_larger: bool,
) -> Option<(OrderedF64, NodeId)> {
    let mut len = round.len();
    while len > 1 {
        let half = len / 2;
        for i in 0..half {
            let (a, b) = (round[2 * i], round[2 * i + 1]);
            round[i] = if prefer_larger { a.max(b) } else { a.min(b) };
        }
        if len % 2 == 1 {
            round[half] = round[len - 1];
        }
        len = half + len % 2;
    }
    round.first().copied()
}

/// Whether `node` can take `demand`: capacity in both dimensions plus the
/// per-node pod-count cap.
fn fits_node(state: &ClusterState, cfg: &PackingConfig, node: NodeId, demand: Resources) -> bool {
    demand.fits_in(&state.remaining(node))
        && cfg
            .max_pods_per_node
            .is_none_or(|cap| state.pods_on(node).len() < cap)
}

/// Step 1: find a node for `demand` under the configured strategy.
fn try_fit(
    state: &ClusterState,
    sorted: &SortedNodes,
    demand: Resources,
    cfg: &PackingConfig,
) -> Option<NodeId> {
    match cfg.fit {
        FitStrategy::BestFit => sorted
            .best_fit_candidates(demand.scalar())
            .find(|&n| fits_node(state, cfg, n, demand)),
        // First fit by id order, stopping at the first fit. (This used to
        // materialize every fitting node from the capacity-sorted view and
        // take `.min()` — an O(tracked nodes) scan per placement. The
        // placements are identical: a fitting node's remaining capacity
        // always clears the scalar key filter, so "min id among all
        // fitting" equals "first fit in id order".)
        FitStrategy::FirstFit => sorted
            .iter_by_id()
            .map(|(n, _)| n)
            .find(|&n| fits_node(state, cfg, n, demand)),
        FitStrategy::WorstFit => sorted
            .iter_desc()
            .map(|(n, _)| n)
            .find(|&n| fits_node(state, cfg, n, demand)),
    }
}

/// Step 2: free up one node by migrating its smallest pods elsewhere.
///
/// Examines candidate source nodes from most to least remaining capacity
/// (emptier nodes need fewer moves). Tentative moves are rolled back when a
/// candidate cannot be freed within the move budget. Runs sequentially on
/// the authoritative global view in both drivers; on the sharded path the
/// [`NodeBook`] updates also dirty the touched shard mirrors, so the merge
/// replays any proposal a migration (or its rollback) invalidated.
fn repack_to_fit(
    state: &mut ClusterState,
    book: &mut NodeBook,
    demand: Resources,
    cfg: &PackingConfig,
    out: &mut PackOutcome,
) -> Option<NodeId> {
    let candidates: Vec<NodeId> = book
        .sorted
        .iter_desc()
        .take(cfg.max_migration_nodes)
        .map(|(n, _)| n)
        .collect();
    for source in candidates {
        let mut moves: Vec<(PodKey, NodeId, NodeId)> = Vec::new();
        // Smallest pods first: they are the easiest to re-home.
        let mut pods: Vec<(PodKey, Resources)> = state
            .pods_on(source)
            .iter()
            .map(|&p| (p, state.demand_of(p).expect("pod on node is assigned")))
            .collect();
        // `total_cmp`: a degenerate (NaN) demand must order deterministically
        // (last, as the hardest to re-home), not panic mid-incident.
        pods.sort_by(|a, b| a.1.scalar().total_cmp(&b.1.scalar()));
        let mut ok = false;
        for (p, d) in pods {
            if fits_node(state, cfg, source, demand) {
                ok = true;
                break;
            }
            if moves.len() >= cfg.max_migration_moves {
                break;
            }
            // Find a home on any *other* node (best-fit).
            let Some(dest) = book
                .sorted
                .best_fit_candidates(d.scalar())
                .find(|&n| n != source && fits_node(state, cfg, n, d))
            else {
                continue;
            };
            state.migrate(p, dest).expect("fit was just verified");
            book.update(source, state.remaining(source).scalar());
            book.update(dest, state.remaining(dest).scalar());
            moves.push((p, source, dest));
        }
        if !ok && fits_node(state, cfg, source, demand) {
            ok = true;
        }
        if ok {
            out.migrations.extend(moves);
            return Some(source);
        }
        // Roll back tentative moves, most recent first.
        for (p, src, dest) in moves.into_iter().rev() {
            state.migrate(p, src).expect("rollback to source succeeds");
            book.update(src, state.remaining(src).scalar());
            book.update(dest, state.remaining(dest).scalar());
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pod(s: u32) -> PodKey {
        PodKey::new(0, s, 0)
    }

    fn plan_of(entries: &[(u32, f64)]) -> Vec<PlannedPod> {
        entries
            .iter()
            .map(|&(s, cpu)| PlannedPod::new(pod(s), Resources::cpu(cpu)))
            .collect()
    }

    #[test]
    fn fresh_cluster_best_fit_packs_tightly() {
        let mut state = ClusterState::new([Resources::cpu(10.0), Resources::cpu(4.0)]);
        let plan = plan_of(&[(0, 4.0), (1, 6.0), (2, 4.0)]);
        let out = pack(&mut state, &plan, &PackingConfig::default());
        assert!(out.unplaced.is_empty());
        assert_eq!(out.starts.len(), 3);
        // Best-fit: pod0 (4.0) goes to the 4-CPU node, pods 1+2 fill node 0.
        assert_eq!(state.node_of(pod(0)), Some(NodeId::new(1)));
        assert_eq!(state.remaining(NodeId::new(0)).cpu, 0.0);
        state.check_invariants().unwrap();
    }

    #[test]
    fn running_pods_kept_in_place() {
        let mut state = ClusterState::homogeneous(2, Resources::cpu(10.0));
        state
            .assign(pod(0), Resources::cpu(3.0), NodeId::new(1))
            .unwrap();
        let plan = plan_of(&[(0, 3.0), (1, 2.0)]);
        let out = pack(&mut state, &plan, &PackingConfig::default());
        assert_eq!(state.node_of(pod(0)), Some(NodeId::new(1)));
        assert_eq!(out.starts.len(), 1);
        assert!(out.deletions.is_empty());
    }

    #[test]
    fn pods_not_in_plan_are_deleted() {
        let mut state = ClusterState::homogeneous(1, Resources::cpu(10.0));
        state
            .assign(pod(7), Resources::cpu(3.0), NodeId::new(0))
            .unwrap();
        let plan = plan_of(&[(0, 9.0)]);
        let out = pack(&mut state, &plan, &PackingConfig::default());
        assert_eq!(out.deletions, vec![pod(7)]);
        assert_eq!(state.node_of(pod(7)), None);
        assert_eq!(state.node_of(pod(0)), Some(NodeId::new(0)));
    }

    #[test]
    fn migration_frees_a_node() {
        // Node0: 6/10 used by two 3-CPU pods; node1: 8/10 used.
        // An 8-CPU pod fits nowhere, but moving one 3-CPU pod from node0 to
        // node1 leaves node0 with 7... still not 8; moving both leaves 10.
        let mut state = ClusterState::homogeneous(2, Resources::cpu(10.0));
        state
            .assign(pod(1), Resources::cpu(3.0), NodeId::new(0))
            .unwrap();
        state
            .assign(pod(2), Resources::cpu(3.0), NodeId::new(0))
            .unwrap();
        state
            .assign(pod(3), Resources::cpu(4.0), NodeId::new(1))
            .unwrap();
        let plan = plan_of(&[(1, 3.0), (2, 3.0), (3, 4.0), (0, 8.0)]);
        let out = pack(&mut state, &plan, &PackingConfig::default());
        assert!(out.unplaced.is_empty(), "unplaced: {:?}", out.unplaced);
        // Repack empties node1 (most remaining) by moving pod3 to node0,
        // then places the 8-CPU pod on the freed node1.
        assert_eq!(state.node_of(pod(0)), Some(NodeId::new(1)));
        assert_eq!(
            out.migrations,
            vec![(pod(3), NodeId::new(1), NodeId::new(0))]
        );
        assert!(out.deletions.is_empty());
        state.check_invariants().unwrap();
    }

    #[test]
    fn migration_disabled_falls_through_to_deletion() {
        let mut state = ClusterState::homogeneous(2, Resources::cpu(10.0));
        state
            .assign(pod(1), Resources::cpu(3.0), NodeId::new(0))
            .unwrap();
        state
            .assign(pod(2), Resources::cpu(3.0), NodeId::new(0))
            .unwrap();
        state
            .assign(pod(3), Resources::cpu(4.0), NodeId::new(1))
            .unwrap();
        let plan = plan_of(&[(0, 8.0), (1, 3.0), (2, 3.0), (3, 4.0)]);
        let cfg = PackingConfig {
            enable_migration: false,
            ..PackingConfig::default()
        };
        let out = pack(&mut state, &plan, &cfg);
        // Lowest-priority pod3 is victimized, freeing node1 for the 8-CPU
        // pod; when pod3's own turn comes it is re-placed in the leftover
        // space on node0. The delete + start pair collapses into the one
        // action the agent actually needs: a migration (a running pod is
        // never restarted in place of a move).
        assert_eq!(state.node_of(pod(0)), Some(NodeId::new(1)));
        assert_eq!(state.node_of(pod(3)), Some(NodeId::new(0)));
        assert!(out.deletions.is_empty(), "deletions: {:?}", out.deletions);
        assert_eq!(
            out.migrations,
            vec![(pod(3), NodeId::new(1), NodeId::new(0))]
        );
        assert!(!out.starts.iter().any(|&(p, _)| p == pod(3)));
        state.check_invariants().unwrap();
    }

    #[test]
    fn victim_replaced_on_its_own_node_is_a_keep() {
        // One 12-CPU node running pod5 at 3 CPUs. The plan puts a 10-CPU
        // pod first and shrinks pod5 to 2 CPUs: pod5 is victimized to fit
        // rank 0, then re-placed on the very same node. Net effect for the
        // agent: nothing — no delete, no start, no migration for pod5.
        let mut state = ClusterState::homogeneous(1, Resources::cpu(12.0));
        state
            .assign(pod(5), Resources::cpu(3.0), NodeId::new(0))
            .unwrap();
        let plan = plan_of(&[(0, 10.0), (5, 2.0)]);
        let out = pack(&mut state, &plan, &PackingConfig::default());
        assert_eq!(state.node_of(pod(0)), Some(NodeId::new(0)));
        assert_eq!(state.node_of(pod(5)), Some(NodeId::new(0)));
        assert!(out.deletions.is_empty(), "deletions: {:?}", out.deletions);
        assert!(out.migrations.is_empty());
        assert_eq!(out.starts, vec![(pod(0), NodeId::new(0))]);
        assert!(out.unplaced.is_empty());
        state.check_invariants().unwrap();
    }

    #[test]
    fn starts_and_deletions_never_share_a_pod() {
        // The `migration_disabled_falls_through_to_deletion` shape used to
        // report pod3 in both `deletions` and `starts` — a spurious
        // restart of a running pod. Assert the contract directly.
        let mut state = ClusterState::homogeneous(2, Resources::cpu(10.0));
        state
            .assign(pod(1), Resources::cpu(3.0), NodeId::new(0))
            .unwrap();
        state
            .assign(pod(2), Resources::cpu(3.0), NodeId::new(0))
            .unwrap();
        state
            .assign(pod(3), Resources::cpu(4.0), NodeId::new(1))
            .unwrap();
        let plan = plan_of(&[(0, 8.0), (1, 3.0), (2, 3.0), (3, 4.0)]);
        for enable_migration in [false, true] {
            let mut s = state.clone();
            let cfg = PackingConfig {
                enable_migration,
                ..PackingConfig::default()
            };
            let out = pack(&mut s, &plan, &cfg);
            for &(p, _) in &out.starts {
                assert!(
                    !out.deletions.contains(&p),
                    "pod {p} reported deleted and started (migration={enable_migration})"
                );
            }
            for &p in &out.deletions {
                assert_eq!(s.node_of(p), None, "deleted pod {p} still assigned");
            }
        }
    }

    #[test]
    fn deletion_respects_rank_order() {
        // One 10-CPU node fully used by two running pods ranked 1 and 2;
        // plan puts a new 6-CPU pod at rank 0.
        let mut state = ClusterState::homogeneous(1, Resources::cpu(10.0));
        state
            .assign(pod(1), Resources::cpu(5.0), NodeId::new(0))
            .unwrap();
        state
            .assign(pod(2), Resources::cpu(5.0), NodeId::new(0))
            .unwrap();
        let plan = plan_of(&[(0, 6.0), (1, 5.0), (2, 5.0)]);
        let out = pack(&mut state, &plan, &PackingConfig::default());
        // Lowest priority (pod2, rank 2) deleted first; that frees 5, still
        // short → pod1 also deleted; pod0 placed; then pod1/pod2 retried:
        // pod1 has 4 left → unplaced... wait, pod1 retried at its own rank
        // with 4 CPU free and 5 demanded → unplaced, pod2 same.
        assert_eq!(state.node_of(pod(0)), Some(NodeId::new(0)));
        assert!(out.unplaced.contains(&pod(1)) || out.deletions.contains(&pod(1)));
        assert!(state.node_of(pod(2)).is_none());
        state.check_invariants().unwrap();
    }

    #[test]
    fn victim_started_this_pack_is_not_reported_deleted() {
        // Plan: rank0 big pod arrives *after* rank1 was started? No — plan
        // order is rank order, so a started pod can only be victimized by an
        // *earlier*-ranked pod... which is impossible. But a *surviving*
        // pod placed before the pack can be victimized and then re-placed
        // later. Exercise the bookkeeping: a pod started by this pack is
        // never deleted, so starts/deletions stay disjoint.
        let mut state = ClusterState::homogeneous(1, Resources::cpu(10.0));
        state
            .assign(pod(5), Resources::cpu(8.0), NodeId::new(0))
            .unwrap();
        let plan = plan_of(&[(0, 6.0), (5, 8.0)]);
        let out = pack(&mut state, &plan, &PackingConfig::default());
        assert_eq!(state.node_of(pod(0)), Some(NodeId::new(0)));
        assert!(out.deletions.contains(&pod(5)));
        assert!(out.unplaced.contains(&pod(5)));
        let started: Vec<_> = out.starts.iter().map(|&(p, _)| p).collect();
        assert!(!started.contains(&pod(5)));
        state.check_invariants().unwrap();
    }

    #[test]
    fn strict_mode_aborts() {
        let mut state = ClusterState::homogeneous(1, Resources::cpu(5.0));
        let plan = plan_of(&[(0, 4.0), (1, 4.0), (2, 1.0)]);
        let cfg = PackingConfig {
            strict: true,
            ..PackingConfig::default()
        };
        let out = pack(&mut state, &plan, &cfg);
        assert!(out.aborted);
        assert_eq!(out.unplaced, vec![pod(1)]);
        // pod2 never attempted.
        assert_eq!(state.node_of(pod(2)), None);
    }

    #[test]
    fn skip_mode_continues_past_unplaceable() {
        let mut state = ClusterState::homogeneous(1, Resources::cpu(5.0));
        let plan = plan_of(&[(0, 4.0), (1, 4.0), (2, 1.0)]);
        let out = pack(&mut state, &plan, &PackingConfig::default());
        assert!(!out.aborted);
        assert_eq!(out.unplaced, vec![pod(1)]);
        assert_eq!(state.node_of(pod(2)), Some(NodeId::new(0)));
    }

    #[test]
    fn failed_nodes_not_used() {
        let mut state = ClusterState::homogeneous(2, Resources::cpu(10.0));
        state.fail_node(NodeId::new(0));
        let plan = plan_of(&[(0, 6.0), (1, 6.0)]);
        let out = pack(&mut state, &plan, &PackingConfig::default());
        assert_eq!(state.node_of(pod(0)), Some(NodeId::new(1)));
        assert_eq!(out.unplaced, vec![pod(1)]);
    }

    #[test]
    fn first_fit_and_worst_fit_strategies() {
        let mk = || {
            let mut s = ClusterState::new([Resources::cpu(10.0), Resources::cpu(6.0)]);
            s.assign(pod(9), Resources::cpu(5.0), NodeId::new(0))
                .unwrap();
            s
        };
        let plan = vec![
            PlannedPod::new(pod(9), Resources::cpu(5.0)),
            PlannedPod::new(pod(0), Resources::cpu(3.0)),
        ];
        // Best fit: remaining are node0=5, node1=6 → node0 (5 is tightest ≥3).
        let mut s1 = mk();
        pack(&mut s1, &plan, &PackingConfig::default());
        assert_eq!(s1.node_of(pod(0)), Some(NodeId::new(0)));
        // Worst fit: node1 (6 remaining).
        let mut s2 = mk();
        pack(
            &mut s2,
            &plan,
            &PackingConfig {
                fit: FitStrategy::WorstFit,
                ..PackingConfig::default()
            },
        );
        assert_eq!(s2.node_of(pod(0)), Some(NodeId::new(1)));
        // First fit: node0 (lowest id that fits).
        let mut s3 = mk();
        pack(
            &mut s3,
            &plan,
            &PackingConfig {
                fit: FitStrategy::FirstFit,
                ..PackingConfig::default()
            },
        );
        assert_eq!(s3.node_of(pod(0)), Some(NodeId::new(0)));
    }

    #[test]
    fn pod_limit_forces_spreading() {
        // Two roomy nodes, limit 2 pods each: four 1-CPU pods must split
        // 2+2 even though best-fit would stack all four on one node.
        let mut state = ClusterState::homogeneous(2, Resources::cpu(10.0));
        let plan = plan_of(&[(0, 1.0), (1, 1.0), (2, 1.0), (3, 1.0)]);
        let cfg = PackingConfig {
            max_pods_per_node: Some(2),
            ..PackingConfig::default()
        };
        let out = pack(&mut state, &plan, &cfg);
        assert!(out.unplaced.is_empty());
        assert_eq!(state.pods_on(NodeId::new(0)).len(), 2);
        assert_eq!(state.pods_on(NodeId::new(1)).len(), 2);
        state.check_invariants().unwrap();
    }

    #[test]
    fn pod_limit_binds_before_capacity() {
        let mut state = ClusterState::homogeneous(1, Resources::cpu(10.0));
        let plan = plan_of(&[(0, 1.0), (1, 1.0), (2, 1.0)]);
        let cfg = PackingConfig {
            max_pods_per_node: Some(2),
            ..PackingConfig::default()
        };
        let out = pack(&mut state, &plan, &cfg);
        // Capacity allows all three; the count cap strands the lowest rank.
        assert_eq!(out.unplaced, vec![pod(2)]);
        assert_eq!(state.pod_count(), 2);
    }

    #[test]
    fn pod_limit_deletion_fallback_frees_slots() {
        // Node full by count with two low-rank pods; a higher-ranked pod
        // arrives: one victim is deleted to free a slot.
        let mut state = ClusterState::homogeneous(1, Resources::cpu(10.0));
        state
            .assign(pod(1), Resources::cpu(1.0), NodeId::new(0))
            .unwrap();
        state
            .assign(pod(2), Resources::cpu(1.0), NodeId::new(0))
            .unwrap();
        let plan = plan_of(&[(0, 1.0), (1, 1.0), (2, 1.0)]);
        let cfg = PackingConfig {
            max_pods_per_node: Some(2),
            ..PackingConfig::default()
        };
        let out = pack(&mut state, &plan, &cfg);
        assert_eq!(state.node_of(pod(0)), Some(NodeId::new(0)));
        assert_eq!(state.node_of(pod(1)), Some(NodeId::new(0)));
        assert!(out.deletions.contains(&pod(2)) || out.unplaced.contains(&pod(2)));
        assert_eq!(state.pod_count(), 2);
        state.check_invariants().unwrap();
    }

    #[test]
    fn pod_limit_respected_by_migration_destinations() {
        // Node0 holds two small pods (limit 3); node1 is full by count.
        // An 8-CPU pod needs node0 freed; the small pods cannot move to
        // node1 (count cap) so repack fails and deletion kicks in.
        let mut state = ClusterState::homogeneous(2, Resources::cpu(10.0));
        state
            .assign(pod(1), Resources::cpu(3.0), NodeId::new(0))
            .unwrap();
        state
            .assign(pod(2), Resources::cpu(3.0), NodeId::new(0))
            .unwrap();
        state
            .assign(pod(3), Resources::cpu(1.0), NodeId::new(1))
            .unwrap();
        state
            .assign(pod(4), Resources::cpu(1.0), NodeId::new(1))
            .unwrap();
        state
            .assign(pod(5), Resources::cpu(1.0), NodeId::new(1))
            .unwrap();
        let plan = plan_of(&[(1, 3.0), (2, 3.0), (3, 1.0), (4, 1.0), (5, 1.0), (0, 8.0)]);
        let cfg = PackingConfig {
            max_pods_per_node: Some(3),
            ..PackingConfig::default()
        };
        let out = pack(&mut state, &plan, &cfg);
        // No migration may land on node1 (already at 3 pods).
        for &(_, _, to) in &out.migrations {
            assert_ne!(to, NodeId::new(1));
        }
        for n in [NodeId::new(0), NodeId::new(1)] {
            assert!(state.pods_on(n).len() <= 3);
        }
        state.check_invariants().unwrap();
    }

    /// Snapshot of everything `repack_to_fit` may touch: pod placements
    /// and the `SortedNodes` keys.
    fn snapshot(state: &ClusterState, sorted: &SortedNodes) -> (Vec<(PodKey, NodeId)>, Vec<f64>) {
        let mut pods: Vec<(PodKey, NodeId)> = state.assignments().map(|(p, n, _)| (p, n)).collect();
        pods.sort_unstable();
        let keys = state
            .node_ids()
            .iter()
            .map(|&n| sorted.key(n).unwrap_or(f64::NEG_INFINITY))
            .collect();
        (pods, keys)
    }

    #[test]
    fn repack_rollback_restores_exact_pre_attempt_state() {
        // Node0 full (3×2 CPU of 6); node1 5/6 free with one 1-CPU pod.
        // An incoming 6-CPU demand: candidate node1 cannot be freed (its
        // 1-CPU pod has no destination — node0 is full), candidate node0
        // makes one tentative move (budget 1), still cannot host 6, and
        // must roll back. After the failed attempt every placement and
        // every SortedNodes key must be byte-identical to the snapshot.
        let mut state = ClusterState::new([Resources::cpu(6.0), Resources::cpu(6.0)]);
        for (s, node) in [(1, 0), (2, 0), (3, 0), (4, 1)] {
            let cpu = if s == 4 { 1.0 } else { 2.0 };
            state
                .assign(pod(s), Resources::cpu(cpu), NodeId::new(node as u32))
                .unwrap();
        }
        let mut book = NodeBook::new(&state, None);
        let before = snapshot(&state, &book.sorted);

        let cfg = PackingConfig {
            max_migration_moves: 1,
            ..PackingConfig::default()
        };
        let mut out = PackOutcome::default();
        let target = repack_to_fit(&mut state, &mut book, Resources::cpu(6.0), &cfg, &mut out);

        assert_eq!(target, None, "no candidate can be freed");
        assert_eq!(
            snapshot(&state, &book.sorted),
            before,
            "rollback incomplete"
        );
        assert!(out.migrations.is_empty(), "tentative moves leaked");
        assert!(out.deletions.is_empty() && out.starts.is_empty());
        state.check_invariants().unwrap();
    }

    #[test]
    fn repack_success_after_failed_candidate_keeps_bookkeeping_consistent() {
        // Demand 10 with a 1-move budget. Candidate node0 (rem 6, two
        // 3-CPU pods) moves one pod to node2, is still short (rem 9),
        // and rolls back. Candidate node1 (rem 5, one 6-CPU pod) then
        // succeeds by moving its pod into node0's restored 6 CPUs —
        // which only fits if the rollback really restored them. The
        // outcome must record the successful candidate's move only.
        let mut state = ClusterState::new([
            Resources::cpu(12.0),
            Resources::cpu(11.0),
            Resources::cpu(3.0),
        ]);
        state
            .assign(pod(1), Resources::cpu(3.0), NodeId::new(0))
            .unwrap();
        state
            .assign(pod(2), Resources::cpu(3.0), NodeId::new(0))
            .unwrap();
        state
            .assign(pod(3), Resources::cpu(6.0), NodeId::new(1))
            .unwrap();
        let mut book = NodeBook::new(&state, None);
        let cfg = PackingConfig {
            max_migration_moves: 1,
            ..PackingConfig::default()
        };
        let mut out = PackOutcome::default();
        let target = repack_to_fit(&mut state, &mut book, Resources::cpu(10.0), &cfg, &mut out);
        assert_eq!(target, Some(NodeId::new(1)));
        // Only the successful candidate's move is recorded; node0's
        // tentative move was rolled back and left no trace.
        assert_eq!(
            out.migrations,
            vec![(pod(3), NodeId::new(1), NodeId::new(0))]
        );
        assert!(Resources::cpu(10.0).fits_in(&state.remaining(NodeId::new(1))));
        assert_eq!(state.node_of(pod(1)), Some(NodeId::new(0)));
        assert_eq!(state.node_of(pod(2)), Some(NodeId::new(0)));
        // SortedNodes keys agree with the mutated state on every node.
        for n in state.node_ids() {
            assert_eq!(book.sorted.key(n), Some(state.remaining(n).scalar()), "{n}");
        }
        state.check_invariants().unwrap();
    }

    /// Packs the same scenario sequentially and sharded (over several
    /// shard counts and chunk sizes, inline runner) and asserts the
    /// outcomes and resulting states byte-identical.
    fn assert_sharded_equivalent(state: &ClusterState, plan: &[PlannedPod], cfg: &PackingConfig) {
        let mut seq_state = state.clone();
        let seq = pack(&mut seq_state, plan, cfg);
        for shards in [2usize, 3, 5, 64] {
            for chunk in [0usize, 1, 2, 7, 1000] {
                let mut cfg_s = cfg.clone();
                cfg_s.shards = shards;
                cfg_s.shard_chunk = chunk;
                let mut st = state.clone();
                let out = pack_sharded(&mut st, plan, &cfg_s, &crate::shard::SeqShardRunner);
                let tag = format!("shards {shards} chunk {chunk}");
                assert_eq!(out.deletions, seq.deletions, "{tag}");
                assert_eq!(out.migrations, seq.migrations, "{tag}");
                assert_eq!(out.starts, seq.starts, "{tag}");
                assert_eq!(out.unplaced, seq.unplaced, "{tag}");
                assert_eq!(out.aborted, seq.aborted, "{tag}");
                let placements = |s: &ClusterState| {
                    let mut v: Vec<_> = s.assignments().map(|(p, n, _)| (p, n)).collect();
                    v.sort_unstable();
                    v
                };
                assert_eq!(placements(&st), placements(&seq_state), "{tag}");
                for n in st.node_ids() {
                    assert_eq!(
                        st.remaining(n).cpu.to_bits(),
                        seq_state.remaining(n).cpu.to_bits(),
                        "{tag}: {n}"
                    );
                }
                st.check_invariants().unwrap();
            }
        }
    }

    #[test]
    fn sharded_pack_matches_sequential_on_fresh_clusters() {
        let state = ClusterState::new(
            [10.0, 4.0, 7.0, 6.0, 12.0, 3.0]
                .into_iter()
                .map(Resources::cpu),
        );
        let plan = plan_of(&[
            (0, 4.0),
            (1, 6.0),
            (2, 4.0),
            (3, 9.0),
            (4, 2.5),
            (5, 2.5),
            (6, 5.0),
            (7, 1.0),
        ]);
        for fit in [
            FitStrategy::BestFit,
            FitStrategy::FirstFit,
            FitStrategy::WorstFit,
        ] {
            let cfg = PackingConfig {
                fit,
                ..PackingConfig::default()
            };
            assert_sharded_equivalent(&state, &plan, &cfg);
        }
    }

    #[test]
    fn sharded_pack_matches_sequential_with_victims_and_drops() {
        // Pre-existing pods: one dropped by diagonal scaling (absent from
        // the plan), two victimized across shard boundaries, one kept.
        let mut state = ClusterState::homogeneous(4, Resources::cpu(6.0));
        state
            .assign(pod(9), Resources::cpu(5.0), NodeId::new(0))
            .unwrap(); // kept (in plan)
        state
            .assign(pod(7), Resources::cpu(4.0), NodeId::new(1))
            .unwrap(); // victim candidate
        state
            .assign(pod(8), Resources::cpu(4.0), NodeId::new(2))
            .unwrap(); // victim candidate
        state
            .assign(pod(99), Resources::cpu(3.0), NodeId::new(3))
            .unwrap(); // not in plan: dropped
        let plan = plan_of(&[(0, 6.0), (9, 5.0), (1, 6.0), (7, 4.0), (8, 4.0), (2, 2.0)]);
        for enable_migration in [true, false] {
            for strict in [false, true] {
                let cfg = PackingConfig {
                    enable_migration,
                    strict,
                    max_migration_moves: 1,
                    ..PackingConfig::default()
                };
                assert_sharded_equivalent(&state, &plan, &cfg);
            }
        }
    }

    #[test]
    fn sharded_pack_matches_sequential_with_pod_caps_and_two_dims() {
        let state = ClusterState::new([
            Resources::new(10.0, 1.0),
            Resources::new(4.0, 16.0),
            Resources::new(6.0, 8.0),
            Resources::new(6.0, 8.0),
        ]);
        let plan = vec![
            PlannedPod::new(pod(0), Resources::new(3.0, 8.0)),
            PlannedPod::new(pod(1), Resources::new(1.0, 8.0)),
            PlannedPod::new(pod(2), Resources::new(5.0, 0.5)),
            PlannedPod::new(pod(3), Resources::new(2.0, 4.0)),
            PlannedPod::new(pod(4), Resources::new(2.0, 4.0)),
            PlannedPod::new(pod(5), Resources::new(1.0, 1.0)),
        ];
        let cfg = PackingConfig {
            max_pods_per_node: Some(2),
            ..PackingConfig::default()
        };
        assert_sharded_equivalent(&state, &plan, &cfg);
    }

    #[test]
    fn sharded_pack_with_failed_nodes_and_empty_plan() {
        let mut state = ClusterState::homogeneous(5, Resources::cpu(4.0));
        state.fail_node(NodeId::new(1));
        state.fail_node(NodeId::new(4));
        state
            .assign(pod(3), Resources::cpu(2.0), NodeId::new(2))
            .unwrap();
        let plan = plan_of(&[(0, 4.0), (1, 4.0), (2, 4.0), (3, 2.0)]);
        assert_sharded_equivalent(&state, &plan, &PackingConfig::default());
        assert_sharded_equivalent(&state, &[], &PackingConfig::default());
    }

    #[test]
    fn single_shard_and_tiny_clusters_delegate_to_sequential() {
        let state = ClusterState::homogeneous(1, Resources::cpu(10.0));
        let plan = plan_of(&[(0, 4.0), (1, 4.0), (2, 4.0)]);
        // shards > node_count clamps down to 1 and must still work.
        let cfg = PackingConfig {
            shards: 16,
            ..PackingConfig::default()
        };
        let mut a = state.clone();
        let out_a = pack_sharded(&mut a, &plan, &cfg, &crate::shard::SeqShardRunner);
        let mut b = state.clone();
        let out_b = pack(&mut b, &plan, &PackingConfig::default());
        assert_eq!(out_a.starts, out_b.starts);
        assert_eq!(out_a.unplaced, out_b.unplaced);
    }

    #[test]
    fn tournament_matches_linear_extremum_scan() {
        // The bracket must pick exactly what the serial running-extremum
        // scan picked, for every length (odd lengths exercise the bye).
        let keys = [3.0, 1.0, 4.0, 1.5, 9.0, 2.0, 6.0, 5.0, 3.5];
        for len in 0..=keys.len() {
            let cands: Vec<(OrderedF64, NodeId)> = keys[..len]
                .iter()
                .enumerate()
                .map(|(i, &k)| (OrderedF64::new(k), NodeId::new(i as u32)))
                .collect();
            let linear_min = cands.iter().copied().min();
            let linear_max = cands.iter().copied().max();
            assert_eq!(tournament_extremum(&mut cands.clone(), false), linear_min);
            assert_eq!(tournament_extremum(&mut cands.clone(), true), linear_max);
        }
        // Equal keys break ties on node id, same as the linear scan.
        let tied: Vec<(OrderedF64, NodeId)> = (0..5)
            .map(|i| (OrderedF64::new(2.0), NodeId::new(i)))
            .collect();
        assert_eq!(
            tournament_extremum(&mut tied.clone(), false),
            Some((OrderedF64::new(2.0), NodeId::new(0)))
        );
        assert_eq!(
            tournament_extremum(&mut tied.clone(), true),
            Some((OrderedF64::new(2.0), NodeId::new(4)))
        );
    }

    #[test]
    fn two_dimensional_fit_respected() {
        let mut state = ClusterState::new([
            Resources::new(10.0, 1.0), // plenty of CPU, tiny memory
            Resources::new(4.0, 16.0),
        ]);
        let plan = vec![PlannedPod::new(pod(0), Resources::new(3.0, 8.0))];
        pack(&mut state, &plan, &PackingConfig::default());
        // CPU-sorted best-fit would pick node1 anyway, but ensure the memory
        // dimension rejects node0 even when CPU fits.
        assert_eq!(state.node_of(pod(0)), Some(NodeId::new(1)));
        let plan2 = vec![
            PlannedPod::new(pod(0), Resources::new(3.0, 8.0)),
            PlannedPod::new(pod(1), Resources::new(1.0, 8.0)),
            PlannedPod::new(pod(2), Resources::new(5.0, 0.5)),
        ];
        let mut s2 = ClusterState::new([Resources::new(10.0, 1.0), Resources::new(4.0, 16.0)]);
        let out = pack(&mut s2, &plan2, &PackingConfig::default());
        assert!(out.unplaced.is_empty());
        assert_eq!(s2.node_of(pod(2)), Some(NodeId::new(0)));
        s2.check_invariants().unwrap();
    }
}
