//! A fast, non-cryptographic hasher for the controller's pod-keyed maps
//! (the `rustc-hash`/Fx construction: rotate, xor, multiply).
//!
//! The planner's hot path is dominated by hash-map traffic over
//! [`PodKey`](crate::PodKey)s — assignment lookups during packing, the
//! plan's rank map, action diffs. SipHash's DoS resistance buys nothing
//! there (keys are dense internal ids, not attacker-controlled strings)
//! and costs several times the throughput, so these maps use Fx instead.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// The Fx multiplier (golden-ratio derived, as in Firefox/rustc).
const K: u64 = 0x517c_c1b7_2722_0a95;

/// Fx hasher state.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher(u64);

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.0 = (self.0.rotate_left(5) ^ word).wrapping_mul(K);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in chunks.by_ref() {
            self.add(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            self.add(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add(u64::from(v));
    }

    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.add(u64::from(v));
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add(u64::from(v));
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PodKey;
    use std::hash::{BuildHasher, Hash};

    fn hash_of(key: impl Hash) -> u64 {
        FxBuildHasher::default().hash_one(key)
    }

    #[test]
    fn deterministic_and_discriminating() {
        let a = hash_of(PodKey::new(1, 2, 3));
        assert_eq!(a, hash_of(PodKey::new(1, 2, 3)));
        assert_ne!(a, hash_of(PodKey::new(1, 2, 4)));
        assert_ne!(a, hash_of(PodKey::new(2, 1, 3)));
    }

    #[test]
    fn map_roundtrip() {
        let mut m: FxHashMap<PodKey, usize> = FxHashMap::default();
        for i in 0..1000u32 {
            m.insert(PodKey::new(i, i * 2, 0), i as usize);
        }
        assert_eq!(m.len(), 1000);
        assert_eq!(m.get(&PodKey::new(7, 14, 0)), Some(&7));
        assert_eq!(m.get(&PodKey::new(7, 15, 0)), None);
    }

    #[test]
    fn byte_tail_paths_differ() {
        assert_ne!(hash_of([1u8, 2, 3]), hash_of([1u8, 2, 3, 0]));
        assert_ne!(hash_of("abc"), hash_of("abd"));
    }
}
