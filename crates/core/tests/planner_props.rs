//! Property tests for Algorithm-1 invariants (the paper's Eq. 1/Eq. 2) and
//! end-to-end policy sanity on random workloads.

use phoenix_cluster::{ClusterState, Resources};
use phoenix_core::planner::{app_rank, first_topology_violation, Traversal};
use phoenix_core::policies::standard_roster;
use phoenix_core::spec::{AppSpecBuilder, ServiceId, Workload};
use phoenix_core::tags::Criticality;
use proptest::prelude::*;

/// Random DAG app: levels per service + forward edges.
fn arb_app() -> impl Strategy<Value = phoenix_core::spec::AppSpec> {
    (2usize..25).prop_flat_map(|n| {
        let levels = proptest::collection::vec(1u8..6, n);
        let edges = proptest::collection::vec((0..n, 0..n), 0..n * 2);
        (levels, edges).prop_map(move |(levels, edges)| {
            let mut b = AppSpecBuilder::new("p");
            let ids: Vec<ServiceId> = levels
                .iter()
                .enumerate()
                .map(|(i, &l)| {
                    b.add_service(
                        format!("s{i}"),
                        Resources::cpu(1.0 + (i % 3) as f64),
                        Some(Criticality::new(l)),
                        1,
                    )
                })
                .collect();
            b.with_graph();
            for (a, z) in edges {
                if a != z {
                    let (f, t) = (a.min(z), a.max(z));
                    b.add_dependency(ids[f], ids[t]);
                }
            }
            b.build().unwrap()
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Eq. 2: every order from either traversal is topology-consistent.
    #[test]
    fn app_rank_satisfies_topology(app in arb_app()) {
        for t in [Traversal::CriticalityGuidedDfs, Traversal::StrictFrontier] {
            let order = app_rank(&app, t);
            prop_assert_eq!(order.len(), app.service_count());
            prop_assert!(first_topology_violation(&app, &order).is_none(), "{:?}", t);
            // Permutation check.
            let mut idx: Vec<usize> = order.iter().map(|s| s.index()).collect();
            idx.sort_unstable();
            prop_assert_eq!(idx, (0..app.service_count()).collect::<Vec<_>>());
        }
    }

    /// Eq. 1 (as far as topology allows): in StrictFrontier mode, whenever a
    /// service appears, no strictly-more-critical service that was already
    /// *reachable* (had an activated predecessor or is a source) is still
    /// waiting.
    #[test]
    fn strict_frontier_respects_criticality_among_ready(app in arb_app()) {
        let order = app_rank(&app, Traversal::StrictFrontier);
        let g = app.dependency().unwrap();
        let mut activated = vec![false; app.service_count()];
        for &s in &order {
            let ready = |x: ServiceId| {
                let n = phoenix_dgraph::NodeId::from_index(x.index());
                g.in_degree(n) == 0
                    || g.predecessors(n).iter().any(|p| activated[p.index()])
            };
            for other in app.service_ids() {
                if !activated[other.index()] && other != s && ready(other) && ready(s) {
                    // `other` is ready but was not chosen: it must not be
                    // strictly more critical than `s`.
                    prop_assert!(
                        !app.criticality_of(other)
                            .is_at_least_as_critical_as(app.criticality_of(s))
                            || app.criticality_of(other) == app.criticality_of(s),
                        "ready {} (C{}) skipped for {} (C{})",
                        other,
                        app.criticality_of(other).level(),
                        s,
                        app.criticality_of(s).level()
                    );
                }
            }
            activated[s.index()] = true;
        }
    }

    /// Every policy on a random workload produces a consistent target no
    /// worse than physically possible.
    #[test]
    fn policies_produce_consistent_targets(
        apps in proptest::collection::vec(arb_app(), 1..4),
        nodes in 1usize..8,
        cap in 2.0f64..10.0,
    ) {
        let w = Workload::new(apps);
        let state = ClusterState::homogeneous(nodes, Resources::cpu(cap));
        for p in standard_roster() {
            let plan = p.plan(&w, &state);
            plan.target.check_invariants().unwrap();
            // Total placed demand never exceeds healthy capacity.
            let used = plan.target.total_used().cpu;
            prop_assert!(used <= nodes as f64 * cap + 1e-6, "{}", p.name());
        }
    }
}
