//! Nearest-rank latency summaries for the wall-clock plane.

use crate::stats::percentile_u64;

/// Min/percentile/max summary of one phase's duration samples, in
/// microseconds. Produced by [`summarize`]; wall-clock plane only.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Summary {
    /// Number of samples.
    pub count: usize,
    /// Smallest sample (µs).
    pub min_us: u64,
    /// Nearest-rank median (µs).
    pub p50_us: u64,
    /// Nearest-rank 95th percentile (µs).
    pub p95_us: u64,
    /// Nearest-rank 99th percentile (µs).
    pub p99_us: u64,
    /// Largest sample (µs).
    pub max_us: u64,
}

/// Summarizes duration samples (µs) into a [`Summary`].
///
/// Returns `None` for an empty sample set instead of inventing a value —
/// the edge cases (empty, single sample, all-equal) are pinned by unit
/// tests because a histogram that lies at the edges lies everywhere.
pub fn summarize(samples: &[u64]) -> Option<Summary> {
    if samples.is_empty() {
        return None;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    Some(Summary {
        count: sorted.len(),
        min_us: sorted[0],
        p50_us: percentile_u64(&sorted, 0.50),
        p95_us: percentile_u64(&sorted, 0.95),
        p99_us: percentile_u64(&sorted, 0.99),
        max_us: *sorted.last().expect("non-empty"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_has_no_summary() {
        assert_eq!(summarize(&[]), None);
    }

    #[test]
    fn single_sample_is_every_percentile() {
        let s = summarize(&[42]).expect("one sample summarizes");
        assert_eq!(
            s,
            Summary {
                count: 1,
                min_us: 42,
                p50_us: 42,
                p95_us: 42,
                p99_us: 42,
                max_us: 42,
            }
        );
    }

    #[test]
    fn all_equal_samples_collapse() {
        let s = summarize(&[7; 100]).expect("non-empty");
        assert_eq!(s.count, 100);
        assert_eq!(s.min_us, 7);
        assert_eq!(s.p50_us, 7);
        assert_eq!(s.p95_us, 7);
        assert_eq!(s.p99_us, 7);
        assert_eq!(s.max_us, 7);
    }

    #[test]
    fn distinct_samples_pick_nearest_rank() {
        // 1..=100 sorted: p50 = 50th smallest, p95 = 95th, p99 = 99th.
        let samples: Vec<u64> = (1..=100).rev().collect();
        let s = summarize(&samples).expect("non-empty");
        assert_eq!(s.min_us, 1);
        assert_eq!(s.p50_us, 50);
        assert_eq!(s.p95_us, 95);
        assert_eq!(s.p99_us, 99);
        assert_eq!(s.max_us, 100);
    }
}
