//! Deterministic data-parallel execution substrate.
//!
//! Phoenix's reaction time during a capacity crunch is bounded by its
//! planner, and the evaluation loop (multi-trial sweeps, chaos audits)
//! is bounded by how many independent trials fit in wall-clock. Both are
//! embarrassingly parallel *per item* — per-app graph walks, per-trial
//! sweeps, per-degree injections — but every consumer in this workspace
//! also promises **bit-for-bit reproducible output under any seed**, so
//! naive parallelism (reduce-in-completion-order, shared accumulators)
//! is off the table.
//!
//! This crate provides the one primitive the rest of the stack builds
//! on: a scoped thread [`Pool`] whose [`par_map`](Pool::par_map) /
//! [`par_fold`](Pool::par_fold) are **byte-identical to the sequential
//! fold by construction**:
//!
//! * the input is split into contiguous index chunks;
//! * workers claim chunks from an atomic cursor and write each chunk's
//!   results into its own index-ordered slot (never a shared
//!   accumulator);
//! * the reduction always walks the slots in input order on the calling
//!   thread.
//!
//! Because the mapped closure runs exactly once per item and the fold
//! consumes results in input order, the only thing threads change is
//! *when* each item is computed — never what is computed, nor the order
//! anything is combined. `PHOENIX_THREADS=1` and `PHOENIX_THREADS=64`
//! produce the same bytes.
//!
//! # The global pool
//!
//! [`global()`] returns a process-wide pool initialised from the
//! `PHOENIX_THREADS` environment variable:
//!
//! | `PHOENIX_THREADS` | behaviour |
//! |-------------------|-----------|
//! | unset / unparseable | one worker per available CPU |
//! | `0` or `1` | strictly sequential — no threads are ever spawned |
//! | `N` | `N` workers |
//!
//! Binaries can override the variable before first use with
//! [`set_global_threads`] (the bench bins' `--threads` flag).
//!
//! # Nested fan-out
//!
//! A `par_*` call made from inside a pool worker (any pool's) runs
//! sequentially on that worker: the outer fan-out already owns the
//! cores, so nesting would only multiply threads (N trial workers × N
//! planner workers) without adding parallelism. Benches that need a
//! *genuinely* sequential baseline wrap the measurement in
//! [`with_sequential`], which applies the same suppression to the
//! calling thread. Both are pure scheduling decisions — the bytes never
//! change.
//!
//! # Panics
//!
//! A panic in the mapped closure propagates to the caller (the scope
//! joins every worker, then resumes the first panic); it never deadlocks
//! the pool. Workers that did not panic finish their current chunk.
//!
//! # Examples
//!
//! ```
//! use phoenix_exec::Pool;
//!
//! let pool = Pool::new(4);
//! let squares = pool.par_map(&[1u64, 2, 3, 4], |&x| x * x);
//! assert_eq!(squares, vec![1, 4, 9, 16]);
//!
//! // Ordered reduction: identical to the sequential fold, bit for bit.
//! let sum = pool.par_fold(&[1.0f64, 2.5, 3.25], |&x| x * 2.0, 0.0, |a, b| a + b);
//! assert_eq!(sum.to_bits(), (1.0f64 * 2.0 + 2.5 * 2.0 + 3.25 * 2.0).to_bits());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

thread_local! {
    /// `true` inside a pool worker or a [`with_sequential`] scope: any
    /// nested `par_*` call on this thread takes the sequential path.
    /// Nested fan-out would multiply thread counts (N trial workers ×
    /// N planner workers) without adding usable parallelism — the outer
    /// fan-out already owns every core — and the sequential path is
    /// byte-identical anyway.
    static SEQUENTIAL_CONTEXT: Cell<bool> = const { Cell::new(false) };
}

/// Runs `f` with every `par_*` call on this thread (and in anything it
/// calls) forced onto the sequential path — pool workers spawned inside
/// the scope are never created, so the whole call tree stays on the
/// calling thread.
///
/// This is how the benches measure a *genuinely* sequential baseline:
/// pinning `Pool::sequential()` at one layer is not enough when a lower
/// layer fans out on the [global](global()) pool.
pub fn with_sequential<R>(f: impl FnOnce() -> R) -> R {
    struct Restore(bool);
    impl Drop for Restore {
        fn drop(&mut self) {
            SEQUENTIAL_CONTEXT.set(self.0);
        }
    }
    let _restore = Restore(SEQUENTIAL_CONTEXT.replace(true));
    f()
}

/// `true` when the current thread is a pool worker or inside
/// [`with_sequential`] (nested `par_*` calls will run sequentially).
pub fn in_sequential_context() -> bool {
    SEQUENTIAL_CONTEXT.get()
}

/// How many chunks each worker should get on average: enough that an
/// uneven item (one app with a huge dependency graph, one slow trial)
/// doesn't leave the other workers idle, few enough that the per-chunk
/// bookkeeping stays invisible next to real work.
const CHUNKS_PER_THREAD: usize = 4;

/// A deterministic data-parallel worker pool.
///
/// The pool is a *policy*, not a set of live threads: workers are scoped
/// to each call (`std::thread::scope`), so a `Pool` is `Copy`-cheap to
/// create, never leaks threads, and a sequential pool ([`Pool::new`]
/// with `0` or `1`) spawns nothing at all. See the crate docs for the
/// determinism contract.
#[derive(Debug, Clone)]
pub struct Pool {
    threads: usize,
}

impl Default for Pool {
    /// Same resolution as [`global()`]: `PHOENIX_THREADS`, else one
    /// worker per available CPU.
    fn default() -> Pool {
        Pool::new(threads_from_env())
    }
}

impl Pool {
    /// A pool with `threads` workers; `0` and `1` both mean strictly
    /// sequential (no threads are ever spawned).
    pub fn new(threads: usize) -> Pool {
        Pool {
            threads: threads.max(1),
        }
    }

    /// The strictly sequential pool.
    pub fn sequential() -> Pool {
        Pool::new(1)
    }

    /// Worker count (`1` means sequential).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// `true` when this pool never spawns threads.
    pub fn is_sequential(&self) -> bool {
        self.threads <= 1
    }

    /// Maps `f` over `0..n`, returning results in index order.
    ///
    /// Byte-identical to `(0..n).map(f).collect()` for any thread count.
    pub fn par_map_range<R, F>(&self, n: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        self.par_map_range_chunked(n, self.auto_chunk(n), f)
    }

    /// [`par_map_range`](Pool::par_map_range) with an explicit chunk
    /// size (exposed for the equivalence property tests and for callers
    /// whose items have known, very uneven cost).
    ///
    /// # Panics
    ///
    /// Panics if `chunk == 0` while `n > 0`, or when the mapped closure
    /// panics (the worker panic is propagated, never swallowed).
    pub fn par_map_range_chunked<R, F>(&self, n: usize, chunk: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        if n == 0 {
            return Vec::new();
        }
        assert!(chunk > 0, "chunk size must be positive");
        let chunk_count = n.div_ceil(chunk);
        let workers = self.threads.min(chunk_count);
        if workers <= 1 || in_sequential_context() {
            // Sequential fallback: no threads, no slots, no locking.
            // Also taken for nested calls from inside a pool worker —
            // the outer fan-out already owns the cores, and sequential
            // is byte-identical by construction.
            return (0..n).map(f).collect();
        }

        // One index-ordered slot per chunk; workers never share a slot.
        let slots: Vec<Mutex<Option<Vec<R>>>> =
            (0..chunk_count).map(|_| Mutex::new(None)).collect();
        let cursor = AtomicUsize::new(0);
        // Fail fast: a panicking worker raises this flag on unwind so
        // siblings stop claiming new chunks (they still finish the one
        // in flight) instead of draining the whole input first.
        let abort = AtomicBool::new(false);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| {
                    SEQUENTIAL_CONTEXT.set(true);
                    struct AbortOnPanic<'a>(&'a AtomicBool);
                    impl Drop for AbortOnPanic<'_> {
                        fn drop(&mut self) {
                            if std::thread::panicking() {
                                self.0.store(true, Ordering::Relaxed);
                            }
                        }
                    }
                    let _flag = AbortOnPanic(&abort);
                    while !abort.load(Ordering::Relaxed) {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= chunk_count {
                            break;
                        }
                        let lo = i * chunk;
                        let hi = n.min(lo + chunk);
                        let out: Vec<R> = (lo..hi).map(&f).collect();
                        *slots[i]
                            .lock()
                            .expect("slot poisoned by a panicking sibling") = Some(out);
                    }
                });
            }
        });

        let mut results = Vec::with_capacity(n);
        for slot in slots {
            let chunk_out = slot
                .into_inner()
                .expect("slot poisoned")
                .expect("every chunk was claimed before the scope closed");
            results.extend(chunk_out);
        }
        results
    }

    /// Maps `f` over `items`, returning results in input order.
    ///
    /// Byte-identical to `items.iter().map(f).collect()` for any thread
    /// count.
    pub fn par_map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        self.par_map_range(items.len(), |i| f(&items[i]))
    }

    /// Maps `f(index, item)` over `items`, results in input order.
    pub fn par_map_indexed<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        self.par_map_range(items.len(), |i| f(i, &items[i]))
    }

    /// Parallel map + strictly in-order sequential reduction.
    ///
    /// Byte-identical to `items.iter().map(map).fold(init, fold)` by
    /// construction: the map fans out, the fold never does.
    pub fn par_fold<T, R, A, M, F>(&self, items: &[T], map: M, init: A, fold: F) -> A
    where
        T: Sync,
        R: Send,
        M: Fn(&T) -> R + Sync,
        F: FnMut(A, R) -> A,
    {
        self.par_map(items, map).into_iter().fold(init, fold)
    }

    /// Default chunk size for `n` items: enough chunks to load-balance
    /// ([`CHUNKS_PER_THREAD`] per worker), never empty.
    fn auto_chunk(&self, n: usize) -> usize {
        n.div_ceil(self.threads.max(1) * CHUNKS_PER_THREAD).max(1)
    }
}

/// Parses `PHOENIX_THREADS`; unset or unparseable falls back to the
/// available parallelism.
fn threads_from_env() -> usize {
    match std::env::var("PHOENIX_THREADS") {
        Ok(v) => match v.trim().parse::<usize>() {
            Ok(n) => n.max(1),
            Err(_) => available_parallelism(),
        },
        Err(_) => available_parallelism(),
    }
}

/// `std::thread::available_parallelism` with a sequential fallback.
fn available_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

static GLOBAL: OnceLock<Pool> = OnceLock::new();

/// The process-wide pool, initialised on first use from
/// `PHOENIX_THREADS` (see the crate docs for the table). Every planning
/// and evaluation entry point that does not take an explicit [`Pool`]
/// uses this one.
pub fn global() -> &'static Pool {
    GLOBAL.get_or_init(Pool::default)
}

/// Overrides the global pool's worker count **before first use** (the
/// bench binaries' `--threads` flag). Returns `false` — and changes
/// nothing — if the global pool was already initialised.
pub fn set_global_threads(threads: usize) -> bool {
    GLOBAL.set(Pool::new(threads)).is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_input_yields_empty_output() {
        for threads in [1, 4] {
            let pool = Pool::new(threads);
            assert!(pool.par_map::<u32, u32, _>(&[], |&x| x).is_empty());
            assert!(pool.par_map_range(0, |i| i).is_empty());
        }
    }

    #[test]
    fn zero_and_one_threads_are_sequential() {
        assert!(Pool::new(0).is_sequential());
        assert!(Pool::new(1).is_sequential());
        assert!(!Pool::new(2).is_sequential());
        assert_eq!(Pool::new(0).threads(), 1);
        assert_eq!(Pool::sequential().threads(), 1);
    }

    #[test]
    fn par_map_preserves_input_order() {
        let items: Vec<usize> = (0..1000).collect();
        for threads in [1, 2, 3, 8] {
            let out = Pool::new(threads).par_map(&items, |&x| x * 3);
            assert_eq!(out, items.iter().map(|&x| x * 3).collect::<Vec<_>>());
        }
    }

    #[test]
    fn indexed_map_sees_true_indices() {
        let items = vec!["a", "b", "c", "d", "e"];
        for threads in [1, 4] {
            let out = Pool::new(threads).par_map_indexed(&items, |i, &s| format!("{i}{s}"));
            assert_eq!(out, vec!["0a", "1b", "2c", "3d", "4e"]);
        }
    }

    #[test]
    fn fold_is_bitwise_equal_to_sequential_for_floats() {
        // Non-associative float sums: only in-order reduction matches.
        let items: Vec<f64> = (0..500).map(|i| 1.0 + (i as f64) * 1e-13).collect();
        let expected = items.iter().map(|&x| x / 3.0).fold(0.0f64, |a, b| a + b);
        for threads in [1, 2, 7] {
            let got = Pool::new(threads).par_fold(&items, |&x| x / 3.0, 0.0f64, |a, b| a + b);
            assert_eq!(got.to_bits(), expected.to_bits(), "threads = {threads}");
        }
    }

    #[test]
    fn explicit_chunk_sizes_do_not_change_results() {
        let n = 97;
        let expected: Vec<usize> = (0..n).map(|i| i * i).collect();
        for threads in [1, 3, 16] {
            for chunk in [1, 2, 5, 96, 97, 1000] {
                let got = Pool::new(threads).par_map_range_chunked(n, chunk, |i| i * i);
                assert_eq!(got, expected, "threads {threads} chunk {chunk}");
            }
        }
    }

    #[test]
    fn nested_fan_out_stays_on_the_worker_thread() {
        // An inner par_map issued from a pool worker must not spawn: all
        // its items run on the worker's own thread, in order.
        let outer = Pool::new(4);
        let inner = Pool::new(4);
        let results = outer.par_map_range_chunked(8, 1, |i| {
            let worker = std::thread::current().id();
            let inner_threads = inner.par_map_range(16, |j| (std::thread::current().id(), i * j));
            let values: Vec<usize> = inner_threads.iter().map(|&(_, v)| v).collect();
            let all_on_worker = inner_threads.iter().all(|&(id, _)| id == worker);
            (all_on_worker, values)
        });
        for (i, (all_on_worker, values)) in results.into_iter().enumerate() {
            assert!(all_on_worker, "item {i} nested fan-out left its worker");
            assert_eq!(values, (0..16).map(|j| i * j).collect::<Vec<_>>());
        }
    }

    #[test]
    fn with_sequential_pins_the_calling_thread() {
        let caller = std::thread::current().id();
        assert!(!in_sequential_context());
        let ids = with_sequential(|| {
            assert!(in_sequential_context());
            Pool::new(8).par_map_range(32, |_| std::thread::current().id())
        });
        assert!(!in_sequential_context(), "context must restore on exit");
        assert!(ids.into_iter().all(|id| id == caller));
        // Restores even when the closure panics.
        let _ = std::panic::catch_unwind(|| with_sequential(|| panic!("boom")));
        assert!(!in_sequential_context());
    }

    #[test]
    fn worker_panic_propagates_without_deadlock() {
        for threads in [1, 4] {
            let pool = Pool::new(threads);
            let result = std::panic::catch_unwind(move || {
                pool.par_map_range(64, |i| {
                    if i == 13 {
                        panic!("boom at {i}");
                    }
                    i
                })
            });
            assert!(result.is_err(), "threads = {threads}");
        }
    }

    #[test]
    fn global_pool_is_stable_across_calls() {
        let a = global().threads();
        let b = global().threads();
        assert_eq!(a, b);
        assert!(a >= 1);
        // Once initialised, overrides are rejected.
        assert!(!set_global_threads(a + 7));
        assert_eq!(global().threads(), a);
    }
}
