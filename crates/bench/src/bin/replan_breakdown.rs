//! Stage-level timing breakdown of cold `plan_with` vs. warm
//! `Controller::replan` on the shared monitor-tick scenario (converged
//! cluster, alternating one/two failed nodes). Diagnostic companion to
//! the `replan` Criterion bench; not part of any figure.

use phoenix_bench::arg;
use phoenix_bench::replan_scenario::{converge_and_degrade, replan_env};
use phoenix_core::controller::{plan_with, PhoenixConfig};
use phoenix_core::objectives::ObjectiveKind;
use phoenix_core::replan::ReplanDelta;
use std::time::Instant;

fn main() {
    let nodes: usize = arg("nodes", 1000);
    let env = replan_env(nodes);
    println!(
        "apps={} pods={}",
        env.workload.app_count(),
        env.baseline.pod_count()
    );

    for kind in [ObjectiveKind::Cost, ObjectiveKind::Fairness] {
        let (mut controller, failed_a, failed_b) = converge_and_degrade(&env, kind);
        let cfg = PhoenixConfig::with_objective(kind);
        for (label, state) in [("a", &failed_a), ("b", &failed_b), ("a", &failed_a)] {
            let t = Instant::now();
            let r = plan_with(&env.workload, state, &cfg);
            let total = t.elapsed();
            println!(
                "{kind} cold[{label}]: total {total:?} planner {:?} sched {:?} rest {:?} actions {}",
                r.planner_time,
                r.scheduler_time,
                total - r.planner_time - r.scheduler_time,
                r.actions.len()
            );
        }
        for round in 0..6 {
            let state = if round % 2 == 0 { &failed_a } else { &failed_b };
            let t = Instant::now();
            let r = controller.replan(state, ReplanDelta::CapacityOnly);
            let total = t.elapsed();
            println!(
                "{kind} warm[{}]: total {total:?} planner {:?} sched {:?} rest {:?} actions {}",
                if round % 2 == 0 { "a" } else { "b" },
                r.planner_time,
                r.scheduler_time,
                total - r.planner_time - r.scheduler_time,
                r.actions.len()
            );
        }
    }
}
