//! End-to-end request latency model — the machinery behind Table 1.
//!
//! Each request type has a log-normal end-to-end latency calibrated to the
//! paper's measurements. Diagonal scaling changes latency in two ways:
//!
//! * a pruned **required** service kills the request type entirely
//!   (Table 1 shows "–"),
//! * a pruned **optional** service is *cheaper* than a live one: HR uses
//!   gRPC over HTTP/2, which detects failed connections and fails fast
//!   (Appendix H), so the hop's latency contribution is replaced by a
//!   millisecond-scale fast-fail — P95 drops slightly (reserve: 55.33 →
//!   50.11 ms in the paper).

use phoenix_core::spec::ServiceId;
use phoenix_core::stats::percentile;
use rand::Rng;
use rand::SeedableRng;

use crate::catalog::AppModel;

/// Latency profile of one request type.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RequestLatency {
    /// Median end-to-end latency, all services up (ms).
    pub median_ms: f64,
    /// Portion of the median contributed by optional downstream calls (ms).
    pub optional_ms: f64,
    /// Fast-fail cost replacing a pruned optional call (ms).
    pub fail_fast_ms: f64,
    /// Log-space sigma.
    pub sigma: f64,
}

impl Default for RequestLatency {
    fn default() -> RequestLatency {
        RequestLatency {
            median_ms: 50.0,
            optional_ms: 0.0,
            fail_fast_ms: 2.0,
            sigma: 0.18,
        }
    }
}

/// Calibrated medians for the known request types (Table 1 measurements).
pub fn latency_profile(request_name: &str) -> RequestLatency {
    let (median_ms, optional_ms, sigma) = match request_name {
        // Overleaf (REST + websockets; higher variance on compile).
        "edits" => (105.0, 0.0, 0.18),
        "compile" => (3150.0, 0.0, 0.19),
        "spell_check" => (1680.0, 0.0, 0.19),
        "versioning" => (180.0, 0.0, 0.20),
        "chat" => (60.0, 8.0, 0.20),
        "downloads" => (220.0, 0.0, 0.20),
        // HotelReservation (gRPC; tight distributions).
        "search" => (40.0, 0.0, 0.17),
        "recommend" => (35.0, 0.0, 0.18),
        "reserve" => (41.0, 6.0, 0.18),
        "login" => (31.0, 0.0, 0.18),
        _ => (40.0, 0.0, 0.18),
    };
    RequestLatency {
        median_ms,
        optional_ms,
        fail_fast_ms: 2.0,
        sigma,
    }
}

/// P95 of a log-normal with the given median/sigma, estimated by sampling
/// (deterministic under `seed`).
fn p95_lognormal(median_ms: f64, sigma: f64, seed: u64, samples: usize) -> f64 {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut xs: Vec<f64> = (0..samples)
        .map(|_| {
            let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
            let u2: f64 = rng.gen_range(0.0..1.0);
            let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
            (median_ms.ln() + sigma * z).exp()
        })
        .collect();
    xs.sort_by(f64::total_cmp);
    percentile(&xs, 0.95)
}

/// P95 latency of `request` in `model` under an availability predicate.
///
/// Returns `None` when the request cannot be served at all (a required
/// service is pruned, or any service for crash-prone apps) — the "–"
/// entries of Table 1.
pub fn request_p95(
    model: &AppModel,
    request: usize,
    service_up: impl Fn(ServiceId) -> bool,
    seed: u64,
) -> Option<f64> {
    let outcome = &model.outcomes(&service_up)[request];
    if outcome.served_rps <= 0.0 {
        return None;
    }
    let req = &model.requests[request];
    let profile = latency_profile(&req.name);
    let optional_pruned = req.optional.iter().any(|&s| !service_up(s));
    let median = if optional_pruned {
        profile.median_ms - profile.optional_ms + profile.fail_fast_ms
    } else {
        profile.median_ms
    };
    Some(p95_lognormal(median, profile.sigma, seed, 20_000))
}

/// One row of Table 1.
#[derive(Debug, Clone, PartialEq)]
pub struct LatencyRow {
    /// Application name.
    pub app: String,
    /// Request/service name.
    pub service: String,
    /// P95 before diagonal scaling (all services up), ms.
    pub before_ms: f64,
    /// P95 after diagonal scaling, ms; `None` = pruned ("–").
    pub after_ms: Option<f64>,
}

/// Builds Table-1 rows for `model`: before (everything up) vs. after
/// (availability per `service_up_after`). Only the named requests are
/// listed, preserving order.
pub fn latency_rows(
    model: &AppModel,
    requests: &[&str],
    service_up_after: impl Fn(ServiceId) -> bool + Copy,
    seed: u64,
) -> Vec<LatencyRow> {
    requests
        .iter()
        .filter_map(|&name| {
            let idx = model.requests.iter().position(|r| r.name == name)?;
            let before =
                request_p95(model, idx, |_| true, seed).expect("all-up request always serves");
            let after = request_p95(model, idx, service_up_after, seed.wrapping_add(1));
            Some(LatencyRow {
                app: model.spec.name().to_string(),
                service: name.to_string(),
                before_ms: before,
                after_ms: after,
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hotel::{hotel, HotelVariant};
    use crate::overleaf::{overleaf, OverleafVariant};
    use phoenix_core::tags::Criticality;

    #[test]
    fn p95_small_sample_counts_use_nearest_rank() {
        // Nearest-rank percentiles for tiny n: the old
        // `(0.95 * n) as usize` index was one rank high (for n = 20 it
        // read the maximum instead of the 19th of 20 — in bounds, but
        // biased). The shared helper is unit-tested in core::stats; here
        // just pin that small n stays finite and sane.
        let one = p95_lognormal(100.0, 0.3, 7, 1);
        assert!(one.is_finite());
        for n in [2, 3, 20] {
            let p = p95_lognormal(100.0, 0.3, 7, n);
            assert!(p.is_finite(), "n={n}");
        }
    }

    #[test]
    fn p95_is_above_median_and_deterministic() {
        let a = p95_lognormal(100.0, 0.2, 1, 20_000);
        let b = p95_lognormal(100.0, 0.2, 1, 20_000);
        assert_eq!(a, b);
        assert!(a > 100.0);
        // ≈ median · exp(1.645 σ) = 139; sampling noise ±3 %.
        assert!((130.0..150.0).contains(&a), "p95 {a}");
    }

    #[test]
    fn overleaf_edits_p95_in_table1_band() {
        let m = overleaf("overleaf", OverleafVariant::Edits, 1.0);
        let p95 = request_p95(&m, 0, |_| true, 42).unwrap();
        // Paper: 141 ms before, 144 ms after — same band.
        assert!((120.0..170.0).contains(&p95), "edits p95 {p95}");
    }

    #[test]
    fn pruned_required_service_yields_dash() {
        let m = overleaf("overleaf", OverleafVariant::Edits, 1.0);
        // spell_check with spelling (idx 5) off → "–".
        let off = ServiceId::new(5);
        assert_eq!(request_p95(&m, 2, |s| s != off, 1), None);
    }

    #[test]
    fn reserve_fails_faster_without_user() {
        let m = hotel("hr", HotelVariant::Reserve, 1.0).patched();
        let user = ServiceId::new(6);
        let before = request_p95(&m, 2, |_| true, 9).unwrap();
        let after = request_p95(&m, 2, |s| s != user, 9).unwrap();
        assert!(
            after < before,
            "gRPC fail-fast must not add latency: {after} vs {before}"
        );
        // Bands of Table 1: 55.33 → 50.11.
        assert!((45.0..70.0).contains(&before), "before {before}");
        assert!((40.0..before).contains(&after), "after {after}");
    }

    #[test]
    fn table_rows_mark_pruned_services() {
        let m = overleaf("overleaf", OverleafVariant::Edits, 1.0);
        // Diagonal scaling kept only C1+C2 services.
        let keep = |s: ServiceId| {
            m.spec
                .criticality_of(s)
                .is_at_least_as_critical_as(Criticality::C2)
        };
        let rows = latency_rows(&m, &["edits", "compile", "spell_check"], keep, 3);
        assert_eq!(rows.len(), 3);
        assert!(rows[0].after_ms.is_some(), "edits survive");
        assert!(rows[1].after_ms.is_some(), "compile is C2");
        assert_eq!(rows[2].after_ms, None, "spell_check pruned");
    }
}
