//! The end-to-end Phoenix controller: planner → global ranking → packing →
//! action plan, with stage timings (Fig. 8b measures exactly this path).

use std::time::{Duration, Instant};

use phoenix_cluster::packing::{pack, pack_sharded, PackOutcome, PackingConfig, PlannedPod};
use phoenix_cluster::shard::{ShardProposals, ShardRunner};
use phoenix_cluster::ClusterState;
use phoenix_exec::Pool;

use crate::actions::{diff_states, ActionPlan};
use crate::objectives::{ObjectiveKind, OperatorObjective};
use crate::planner::{app_rank, PlannerConfig};
use crate::ranking::{global_rank, GlobalRank, GlobalRankItem};
use crate::replan::{replan_with, ReplanCache, ReplanDelta};
use crate::spec::{AppSpec, ModeAssignment, ServiceId, Workload};

/// Controller configuration: objective + planner + packing knobs.
#[derive(Debug)]
pub struct PhoenixConfig {
    /// Operator objective driving the global ranking.
    pub objective: Box<dyn OperatorObjective>,
    /// Planner knobs (traversal mode, saturation policy).
    pub planner: PlannerConfig,
    /// Packing knobs (fit strategy, migration, strictness).
    pub packing: PackingConfig,
}

impl Default for PhoenixConfig {
    fn default() -> PhoenixConfig {
        PhoenixConfig::with_objective(ObjectiveKind::Fairness)
    }
}

impl PhoenixConfig {
    /// Config with a built-in objective and default knobs.
    pub fn with_objective(kind: ObjectiveKind) -> PhoenixConfig {
        PhoenixConfig {
            objective: kind.build(),
            planner: PlannerConfig {
                // Phoenix activates per-app chains independently; retiring a
                // saturated app's chain (instead of stopping the world)
                // matches the observed behaviour of the reference system.
                continue_on_saturation: true,
                ..PlannerConfig::default()
            },
            packing: PackingConfig::default(),
        }
    }
}

/// Everything one planning round produces.
#[derive(Debug)]
pub struct PlanResult {
    /// The target cluster state (scratch copy after packing).
    pub target: ClusterState,
    /// The global activation list and fair-share bookkeeping.
    pub rank: GlobalRank,
    /// Raw packing outcome (deletions/migrations/starts on the scratch).
    pub packing: PackOutcome,
    /// Agent task list: live → target.
    pub actions: ActionPlan,
    /// Chosen serving mode per service. Empty — which reads as all
    /// [`Full`](crate::spec::ServingMode::Full) — for mode-less
    /// workloads; only meaningful for services the plan actually places.
    pub modes: ModeAssignment,
    /// Time spent in the planner (priority estimation + global ranking).
    pub planner_time: Duration,
    /// Time spent in the scheduler (bin packing).
    pub scheduler_time: Duration,
}

impl PlanResult {
    /// Total planning latency (planner + scheduler), the paper's
    /// "time to compute a new target state".
    pub fn total_time(&self) -> Duration {
        self.planner_time + self.scheduler_time
    }
}

/// The Phoenix resilience controller (Figure 3).
///
/// Owns the workload description (criticality tags, DGs, prices — the
/// inputs §5 persists in a storage service) and plans against any cluster
/// state handed to it.
#[derive(Debug)]
pub struct PhoenixController {
    workload: Workload,
    config: PhoenixConfig,
    cache: ReplanCache,
}

impl PhoenixController {
    /// Creates a controller for `workload`.
    pub fn new(workload: Workload, config: PhoenixConfig) -> PhoenixController {
        PhoenixController {
            workload,
            config,
            cache: ReplanCache::new(),
        }
    }

    /// The workload this controller manages.
    pub fn workload(&self) -> &Workload {
        &self.workload
    }

    /// Mutable access to the configuration (for ablations).
    ///
    /// Knob changes are picked up by the next [`replan`](Self::replan)
    /// automatically (the warm cache re-validates per round).
    pub fn config_mut(&mut self) -> &mut PhoenixConfig {
        &mut self.config
    }

    /// Plans a new target state for the (possibly degraded) `state`.
    ///
    /// `state` is *not* mutated; packing happens on a scratch copy that is
    /// returned as [`PlanResult::target`]. Always runs the pipeline cold;
    /// use [`replan`](Self::replan) inside a monitoring loop.
    pub fn plan(&self, state: &ClusterState) -> PlanResult {
        plan_with(&self.workload, state, &self.config)
    }

    /// Warm-started planning round: identical output to
    /// [`plan`](Self::plan), but reuses the previous round's per-app
    /// ranks, global ranking, and packing bookkeeping wherever `delta`
    /// and the cached fingerprints allow (see [`crate::replan`]).
    pub fn replan(&mut self, state: &ClusterState, delta: ReplanDelta) -> PlanResult {
        replan_with(&self.workload, state, &self.config, &mut self.cache, delta)
    }

    /// Drops the warm-replan cache (next [`replan`](Self::replan) runs
    /// cold). Useful after bulk workload edits through external channels.
    pub fn invalidate_cache(&mut self) {
        self.cache.clear();
    }
}

/// The controller pipeline as a free function over borrowed inputs —
/// policies and sweeps call this directly so multi-million-pod workloads
/// are never cloned per planning round. Runs on the
/// [global pool](phoenix_exec::global) (`PHOENIX_THREADS`); see
/// [`plan_with_pool`] to pin a pool explicitly.
pub fn plan_with(workload: &Workload, state: &ClusterState, config: &PhoenixConfig) -> PlanResult {
    plan_with_pool(workload, state, config, phoenix_exec::global())
}

/// Runs sharded-packing proposal passes on a [`Pool`].
///
/// `phoenix-cluster` defines the [`ShardRunner`] seam without depending
/// on the execution substrate (substrate crates carry no intra-workspace
/// deps); this adapter is the one place the two meet. Inherits the
/// pool's determinism contract: results come back in shard order
/// whatever the thread count, and nested fan-out self-suppresses.
#[derive(Debug, Clone, Copy)]
pub struct PoolShardRunner<'a>(pub &'a Pool);

impl ShardRunner for PoolShardRunner<'_> {
    fn run_shards(
        &self,
        shards: usize,
        f: &(dyn Fn(usize) -> ShardProposals + Sync),
    ) -> Vec<ShardProposals> {
        self.0.par_map_range(shards, |s| f(s))
    }
}

/// Flattens the global activation list into per-replica [`PlannedPod`]s,
/// resolving each service's chosen serving mode.
///
/// A mode-less service contributes exactly one rank item; a modal service
/// contributes one item per admitted ladder rung, most degraded first, and
/// its rungs are admitted in ladder order — so the *last* occurrence of a
/// service in `items` carries its best admitted mode. Each service's
/// replica block is emitted at the position of its **first** rung (pack
/// order therefore matches the mode-less planner exactly on mode-less
/// workloads) at the chosen mode's per-replica demand.
pub(crate) fn flatten_plan(
    workload: &Workload,
    items: &[GlobalRankItem],
) -> (Vec<PlannedPod>, ModeAssignment) {
    if !workload.has_modes() {
        let plan = items
            .iter()
            .flat_map(|item| {
                let svc = workload.app(item.app).service(item.service);
                workload
                    .pod_keys(item.app, item.service)
                    .into_iter()
                    .map(move |key| PlannedPod::new(key, svc.demand))
            })
            .collect();
        return (plan, ModeAssignment::empty());
    }
    // Pass 1: last rung admitted per service wins.
    let mut modes = ModeAssignment::for_workload(workload);
    for item in items {
        modes.set(item.app, item.service, item.mode);
    }
    // Pass 2: emit each service's replicas once, at its first rung.
    let mut emitted: Vec<Vec<bool>> = workload
        .apps()
        .map(|(_, a)| vec![false; a.services().len()])
        .collect();
    let mut plan = Vec::new();
    for item in items {
        let seen = &mut emitted[item.app.index()][item.service.index()];
        if *seen {
            continue;
        }
        *seen = true;
        let svc = workload.app(item.app).service(item.service);
        let demand = svc.mode_demand(modes.get(item.app, item.service));
        plan.extend(
            workload
                .pod_keys(item.app, item.service)
                .into_iter()
                .map(|key| PlannedPod::new(key, demand)),
        );
    }
    (plan, modes)
}

/// Packing config actually used for `workload`: modal workloads force
/// [`PackingConfig::rebook_in_place`] on so running replicas are re-booked
/// at their newly chosen mode's demand instead of keeping a stale booking.
pub(crate) fn effective_packing(workload: &Workload, packing: &PackingConfig) -> PackingConfig {
    let mut cfg = packing.clone();
    cfg.rebook_in_place = cfg.rebook_in_place || workload.has_modes();
    cfg
}

/// [`plan_with`] on an explicit [`Pool`].
///
/// The per-app priority-estimation walks ([`app_rank`]) fan out across
/// the pool — they read disjoint [`AppSpec`]s and meet again in app-id
/// order — while the global-ranking heap merge stays sequential, so the
/// output is **byte-identical for every thread count** (see the
/// thread-invariance tests below and in [`crate::replan`]). Packing is
/// sequential by default; with [`PackingConfig::shards`] `> 1` its fit
/// scans fan out over node shards on the same pool, with output
/// byte-identical to the sequential pack by the ordered-merge contract
/// (`phoenix_cluster::packing`).
pub fn plan_with_pool(
    workload: &Workload,
    state: &ClusterState,
    config: &PhoenixConfig,
    pool: &Pool,
) -> PlanResult {
    let obs = phoenix_obs::global();
    obs.incr(phoenix_obs::Counter::ColdPlans);

    // --- Planner -------------------------------------------------------
    let t0 = Instant::now();
    let rank = {
        let _rank_timer = obs.phase(phoenix_obs::Phase::Rank);
        let specs: Vec<&AppSpec> = workload.apps().map(|(_, a)| a).collect();
        let app_ranks: Vec<Vec<ServiceId>> =
            pool.par_map(&specs, |app| app_rank(app, config.planner.traversal));
        let capacity = state.healthy_capacity();
        global_rank(
            workload,
            &app_ranks,
            config.objective.as_ref(),
            capacity,
            &config.planner,
        )
    };
    let planner_time = t0.elapsed();

    // --- Scheduler -----------------------------------------------------
    let t1 = Instant::now();
    let _pack_timer = obs.phase(phoenix_obs::Phase::Pack);
    let (plan, modes) = flatten_plan(workload, &rank.items);
    let mut pack_cfg = effective_packing(workload, &config.packing);
    pack_cfg.shards = pack_cfg.resolve_shards(state.node_count(), pool.threads());
    // One scratch clone per planning round: `PlanResult::target` must own
    // the packed state while `state` stays untouched — this is the API
    // contract, not per-trial fan-out overhead.
    let mut target = state.clone();
    let packing = if pack_cfg.shards > 1 {
        pack_sharded(&mut target, &plan, &pack_cfg, &PoolShardRunner(pool))
    } else {
        pack(&mut target, &plan, &pack_cfg)
    };
    drop(_pack_timer);
    let scheduler_time = t1.elapsed();

    let actions = diff_states(state, &target);
    PlanResult {
        target,
        rank,
        packing,
        actions,
        modes,
        planner_time,
        scheduler_time,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{AppSpecBuilder, ServiceId};
    use crate::tags::Criticality;
    use phoenix_cluster::{NodeId, PodKey, Resources};

    /// Two apps, 6 CPUs each at full strength.
    fn workload() -> Workload {
        let mut apps = Vec::new();
        for name in ["a", "b"] {
            let mut b = AppSpecBuilder::new(name);
            let fe = b.add_service("fe", Resources::cpu(2.0), Some(Criticality::C1), 1);
            let mid = b.add_service("mid", Resources::cpu(2.0), Some(Criticality::C2), 1);
            let opt = b.add_service("opt", Resources::cpu(2.0), Some(Criticality::C5), 1);
            b.add_dependency(fe, mid);
            b.add_dependency(mid, opt);
            apps.push(b.build().unwrap());
        }
        Workload::new(apps)
    }

    #[test]
    fn plans_full_activation_when_capacity_allows() {
        let w = workload();
        let c = PhoenixController::new(w, PhoenixConfig::default());
        let state = ClusterState::homogeneous(4, Resources::cpu(4.0));
        let result = c.plan(&state);
        assert_eq!(result.target.pod_count(), 6);
        assert!(result.packing.unplaced.is_empty());
        // All actions are starts on a fresh cluster.
        let (d, m, s) = result.actions.counts();
        assert_eq!((d, m), (0, 0));
        assert_eq!(s, 6);
    }

    #[test]
    fn degrades_to_critical_services_under_crunch() {
        let w = workload();
        let c = PhoenixController::new(w, PhoenixConfig::default());
        // Only 6 CPUs healthy (3×2): fair share 3 per app → both C1
        // frontends activate, one C2 squeezes into the leftover aggregate,
        // and no C5 makes the cut.
        let state = ClusterState::homogeneous(3, Resources::cpu(2.0));
        let result = c.plan(&state);
        // Both C1s are planned; C5s are not.
        let planned: Vec<PodKey> = result.target.assignments().map(|(p, _, _)| p).collect();
        assert!(planned.contains(&PodKey::new(0, 0, 0)));
        assert!(planned.contains(&PodKey::new(1, 0, 0)));
        assert!(!planned.iter().any(|p| p.service == 2));
    }

    #[test]
    fn cost_objective_prefers_high_payers() {
        let mut apps = Vec::new();
        for (name, price) in [("cheap", 1.0), ("rich", 10.0)] {
            let mut b = AppSpecBuilder::new(name);
            b.add_service("s0", Resources::cpu(2.0), Some(Criticality::C1), 1);
            b.add_service("s1", Resources::cpu(2.0), Some(Criticality::C2), 1);
            b.price_per_unit(price);
            apps.push(b.build().unwrap());
        }
        let c = PhoenixController::new(
            Workload::new(apps),
            PhoenixConfig::with_objective(ObjectiveKind::Cost),
        );
        let state = ClusterState::homogeneous(1, Resources::cpu(4.0));
        let result = c.plan(&state);
        // 4 CPUs: the rich app gets both services, the cheap one nothing.
        assert_eq!(result.rank.allocated, vec![0.0, 4.0]);
    }

    #[test]
    fn plan_does_not_mutate_live_state() {
        let w = workload();
        let c = PhoenixController::new(w, PhoenixConfig::default());
        let state = ClusterState::homogeneous(4, Resources::cpu(4.0));
        let before = state.pod_count();
        let _ = c.plan(&state);
        assert_eq!(state.pod_count(), before);
    }

    #[test]
    fn replan_matches_plan_and_cache_can_be_dropped() {
        use crate::replan::ReplanDelta;

        let w = workload();
        let mut c = PhoenixController::new(w, PhoenixConfig::default());
        let mut state = ClusterState::homogeneous(4, Resources::cpu(4.0));
        let full = c.replan(&state, ReplanDelta::Full);
        assert_eq!(full.actions, c.plan(&state).actions);
        for (pod, node, demand) in full.target.assignments() {
            let _ = (node, demand);
            state
                .assign(pod, full.target.demand_of(pod).unwrap(), node)
                .unwrap();
        }
        state.fail_node(NodeId::new(0));
        let warm = c.replan(&state, ReplanDelta::CapacityOnly);
        assert_eq!(warm.actions, c.plan(&state).actions);
        c.invalidate_cache();
        let cold_again = c.replan(&state, ReplanDelta::Full);
        assert_eq!(cold_again.actions, warm.actions);
    }

    #[test]
    fn cold_plan_is_thread_count_invariant() {
        let w = workload();
        let config = PhoenixConfig::default();
        let mut state = ClusterState::homogeneous(3, Resources::cpu(2.0));
        state.fail_node(NodeId::new(2));
        let seq = plan_with_pool(&w, &state, &config, &Pool::sequential());
        for threads in [2, 4, 9] {
            let par = plan_with_pool(&w, &state, &config, &Pool::new(threads));
            assert_eq!(seq.actions, par.actions, "threads = {threads}");
            assert_eq!(seq.rank.items, par.rank.items);
            let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
            assert_eq!(bits(&seq.rank.fair_shares), bits(&par.rank.fair_shares));
            assert_eq!(bits(&seq.rank.allocated), bits(&par.rank.allocated));
        }
    }

    #[test]
    fn sharded_packing_is_equivalent_and_thread_invariant() {
        let w = workload();
        let mut state = ClusterState::homogeneous(5, Resources::cpu(3.0));
        state.fail_node(NodeId::new(4));
        let seq = plan_with_pool(&w, &state, &PhoenixConfig::default(), &Pool::sequential());
        for shards in [2usize, 3, 8] {
            for threads in [1usize, 4] {
                let mut cfg = PhoenixConfig::default();
                cfg.packing.shards = shards;
                let par = plan_with_pool(&w, &state, &cfg, &Pool::new(threads));
                let tag = format!("shards {shards} threads {threads}");
                assert_eq!(seq.actions, par.actions, "{tag}");
                assert_eq!(seq.packing.deletions, par.packing.deletions, "{tag}");
                assert_eq!(seq.packing.migrations, par.packing.migrations, "{tag}");
                assert_eq!(seq.packing.starts, par.packing.starts, "{tag}");
                assert_eq!(seq.packing.unplaced, par.packing.unplaced, "{tag}");
            }
        }
    }

    #[test]
    fn crunch_steps_modes_down_instead_of_evicting() {
        use crate::spec::{ModeSpec, ServingMode};

        // One app, two 4-CPU services, each able to fall back to a 2-CPU
        // read-only mode. On 6 CPUs the binary planner fits only one
        // service; the ladder keeps both serving — fe at Full, mid at
        // ReadOnly — instead of evicting mid.
        let mut b = AppSpecBuilder::new("shop");
        let ladder = |full: f64| {
            vec![
                ModeSpec::new(ServingMode::Full, Resources::cpu(full), 1.0),
                ModeSpec::new(ServingMode::ReadOnly, Resources::cpu(full / 2.0), 0.6),
            ]
        };
        let fe = b.add_service("fe", Resources::cpu(4.0), Some(Criticality::C1), 1);
        let mid = b.add_service("mid", Resources::cpu(4.0), Some(Criticality::C2), 1);
        b.service_modes(fe, ladder(4.0));
        b.service_modes(mid, ladder(4.0));
        let modal = Workload::new(vec![b.build().unwrap()]);

        let mut stripped = AppSpecBuilder::new("shop");
        stripped.add_service("fe", Resources::cpu(4.0), Some(Criticality::C1), 1);
        stripped.add_service("mid", Resources::cpu(4.0), Some(Criticality::C2), 1);
        let binary = Workload::new(vec![stripped.build().unwrap()]);

        let state = ClusterState::homogeneous(1, Resources::cpu(6.0));
        let config = PhoenixConfig::default();

        let without = plan_with(&binary, &state, &config);
        assert_eq!(without.target.pod_count(), 1, "binary planner evicts mid");

        let with = plan_with(&modal, &state, &config);
        assert_eq!(with.target.pod_count(), 2, "ladder keeps both serving");
        let app = crate::spec::AppId::new(0);
        assert_eq!(with.modes.get(app, fe), ServingMode::Full);
        assert_eq!(with.modes.get(app, mid), ServingMode::ReadOnly);
        // The pack booked mid at its read-only demand.
        let mid_pod = PodKey::new(0, 1, 0);
        assert_eq!(
            with.target.demand_of(mid_pod),
            Some(Resources::cpu(2.0)),
            "mid must be booked at the chosen mode's demand"
        );
        // Served utility strictly improves: 1.0 + 0.6 > 1.0.
        assert!(with.modes.get(app, mid).depth() > 0);
    }

    #[test]
    fn modal_plan_is_thread_and_shard_invariant() {
        use crate::spec::{ModeSpec, ServingMode};

        let mut apps = Vec::new();
        for a in 0..3 {
            let mut b = AppSpecBuilder::new(format!("m{a}"));
            for s in 0..3 {
                let full = 2.0 + s as f64;
                let id = b.add_service(
                    format!("s{s}"),
                    Resources::cpu(full),
                    Some(Criticality::new(1 + (s + a) as u8 % 5)),
                    1,
                );
                if (s + a) % 2 == 0 {
                    b.service_modes(
                        id,
                        vec![
                            ModeSpec::new(ServingMode::Full, Resources::cpu(full), 1.0),
                            ModeSpec::new(ServingMode::StaleCache, Resources::cpu(full * 0.5), 0.7),
                            ModeSpec::new(ServingMode::Shed, Resources::cpu(full * 0.1), 0.05),
                        ],
                    );
                }
            }
            apps.push(b.build().unwrap());
        }
        let w = Workload::new(apps);
        let mut state = ClusterState::homogeneous(4, Resources::cpu(4.0));
        state.fail_node(NodeId::new(3));
        let seq = plan_with_pool(&w, &state, &PhoenixConfig::default(), &Pool::sequential());
        assert!(
            seq.rank.items.iter().any(|i| i.mode != ServingMode::Full),
            "crunch must engage the ladders"
        );
        for shards in [0usize, 2, 3] {
            for threads in [1usize, 4] {
                let mut cfg = PhoenixConfig::default();
                cfg.packing.shards = shards;
                let par = plan_with_pool(&w, &state, &cfg, &Pool::new(threads));
                let tag = format!("shards {shards} threads {threads}");
                assert_eq!(seq.actions, par.actions, "{tag}");
                assert_eq!(seq.modes, par.modes, "{tag}");
                assert_eq!(seq.rank.items, par.rank.items, "{tag}");
                assert_eq!(seq.packing.starts, par.packing.starts, "{tag}");
            }
        }
    }

    #[test]
    fn survivors_kept_failures_restarted() {
        let w = workload();
        let c = PhoenixController::new(w, PhoenixConfig::default());
        let mut state = ClusterState::homogeneous(4, Resources::cpu(4.0));
        // Run everything, then fail one node.
        let full = c.plan(&state);
        for (pod, node, demand) in full.target.assignments() {
            let _ = demand;
            state
                .assign(pod, full.target.demand_of(pod).unwrap(), node)
                .unwrap();
        }
        let victims = state.pods_on(NodeId::new(0)).to_vec();
        assert!(!victims.is_empty());
        state.fail_node(NodeId::new(0));
        let replan = c.plan(&state);
        // Survivors stay on their nodes.
        for (pod, node, _) in state.assignments() {
            assert_eq!(replan.target.node_of(pod), Some(node), "{pod} moved");
        }
        // Planner/scheduler timings are recorded.
        assert!(replan.total_time() >= replan.planner_time);
        let _ = ServiceId::new(0);
    }
}
