use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Mul, Sub, SubAssign};

/// A two-dimensional resource vector: CPU cores and memory.
///
/// The paper's AdaptLab experiments use a scalar resource model (CPU only);
/// the CloudLab deployment sizes pods by CPU *and* memory. Both fit here —
/// scalar workloads simply leave `mem` at zero via [`Resources::cpu`].
///
/// Arithmetic is componentwise. "Fitting" is componentwise domination:
/// a demand fits in a capacity iff both dimensions fit.
///
/// # Examples
///
/// ```
/// use phoenix_cluster::Resources;
///
/// let capacity = Resources::new(8.0, 32.0);
/// let demand = Resources::new(2.0, 4.0);
/// assert!(demand.fits_in(&capacity));
/// assert_eq!(capacity - demand, Resources::new(6.0, 28.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Resources {
    /// CPU cores (fractional allowed, as in Kubernetes millicores).
    pub cpu: f64,
    /// Memory in GiB.
    pub mem: f64,
}

impl Resources {
    /// The zero vector.
    pub const ZERO: Resources = Resources { cpu: 0.0, mem: 0.0 };

    /// Creates a resource vector.
    ///
    /// # Panics
    ///
    /// Panics if either component is NaN or negative (debug builds assert;
    /// release builds clamp to zero).
    pub fn new(cpu: f64, mem: f64) -> Resources {
        debug_assert!(!cpu.is_nan() && !mem.is_nan(), "resources must not be NaN");
        debug_assert!(cpu >= 0.0 && mem >= 0.0, "resources must be non-negative");
        Resources {
            cpu: cpu.max(0.0),
            mem: mem.max(0.0),
        }
    }

    /// A CPU-only vector (memory zero) — the paper's scalar model.
    pub fn cpu(cpu: f64) -> Resources {
        Resources::new(cpu, 0.0)
    }

    /// `true` when both components are (approximately) zero.
    pub fn is_zero(&self) -> bool {
        self.cpu <= 1e-12 && self.mem <= 1e-12
    }

    /// Componentwise domination with a small tolerance: can `self` be
    /// placed inside `capacity`?
    pub fn fits_in(&self, capacity: &Resources) -> bool {
        self.cpu <= capacity.cpu + 1e-9 && self.mem <= capacity.mem + 1e-9
    }

    /// Saturating subtraction (never goes below zero in any component).
    pub fn saturating_sub(&self, rhs: &Resources) -> Resources {
        Resources {
            cpu: (self.cpu - rhs.cpu).max(0.0),
            mem: (self.mem - rhs.mem).max(0.0),
        }
    }

    /// Componentwise maximum.
    pub fn max(&self, rhs: &Resources) -> Resources {
        Resources {
            cpu: self.cpu.max(rhs.cpu),
            mem: self.mem.max(rhs.mem),
        }
    }

    /// The scalar used for capacity ordering and utilization accounting.
    ///
    /// CPU is the paper's primary (and in AdaptLab, only) dimension, so
    /// ordering keys and fair-share math use it directly.
    pub fn scalar(&self) -> f64 {
        self.cpu
    }

    /// Fraction of `capacity` that `self` occupies, measured on the scalar
    /// dimension; 0.0 when capacity is zero.
    pub fn fraction_of(&self, capacity: &Resources) -> f64 {
        if capacity.scalar() <= 1e-12 {
            0.0
        } else {
            self.scalar() / capacity.scalar()
        }
    }
}

impl fmt::Display for Resources {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.mem == 0.0 {
            write!(f, "{:.2} cpu", self.cpu)
        } else {
            write!(f, "{:.2} cpu / {:.2} GiB", self.cpu, self.mem)
        }
    }
}

impl Add for Resources {
    type Output = Resources;

    fn add(self, rhs: Resources) -> Resources {
        Resources {
            cpu: self.cpu + rhs.cpu,
            mem: self.mem + rhs.mem,
        }
    }
}

impl AddAssign for Resources {
    fn add_assign(&mut self, rhs: Resources) {
        self.cpu += rhs.cpu;
        self.mem += rhs.mem;
    }
}

impl Sub for Resources {
    type Output = Resources;

    fn sub(self, rhs: Resources) -> Resources {
        Resources {
            cpu: self.cpu - rhs.cpu,
            mem: self.mem - rhs.mem,
        }
    }
}

impl SubAssign for Resources {
    fn sub_assign(&mut self, rhs: Resources) {
        self.cpu -= rhs.cpu;
        self.mem -= rhs.mem;
    }
}

impl Mul<f64> for Resources {
    type Output = Resources;

    fn mul(self, rhs: f64) -> Resources {
        Resources {
            cpu: self.cpu * rhs,
            mem: self.mem * rhs,
        }
    }
}

impl Sum for Resources {
    fn sum<I: Iterator<Item = Resources>>(iter: I) -> Resources {
        iter.fold(Resources::ZERO, |a, b| a + b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let a = Resources::new(4.0, 8.0);
        let b = Resources::new(1.5, 2.0);
        assert_eq!(a + b, Resources::new(5.5, 10.0));
        assert_eq!(a - b, Resources::new(2.5, 6.0));
        assert_eq!(b * 2.0, Resources::new(3.0, 4.0));
        let total: Resources = [a, b].into_iter().sum();
        assert_eq!(total, Resources::new(5.5, 10.0));
    }

    #[test]
    fn fits_respects_both_dims() {
        let cap = Resources::new(4.0, 4.0);
        assert!(Resources::new(4.0, 4.0).fits_in(&cap));
        assert!(!Resources::new(4.1, 1.0).fits_in(&cap));
        assert!(!Resources::new(1.0, 4.1).fits_in(&cap));
        assert!(Resources::ZERO.fits_in(&cap));
    }

    #[test]
    fn saturating_sub_clamps() {
        let a = Resources::new(1.0, 1.0);
        let b = Resources::new(2.0, 0.5);
        assert_eq!(a.saturating_sub(&b), Resources::new(0.0, 0.5));
    }

    #[test]
    fn fraction_and_scalar() {
        let cap = Resources::cpu(10.0);
        assert_eq!(Resources::cpu(2.5).fraction_of(&cap), 0.25);
        assert_eq!(Resources::cpu(1.0).fraction_of(&Resources::ZERO), 0.0);
        assert!(!Resources::cpu(3.0).is_zero());
        assert!(Resources::ZERO.is_zero());
    }
}
