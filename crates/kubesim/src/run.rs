//! The control-plane event loop: kubelet health, failure detection, the
//! Phoenix agent's monitor/plan/execute cycle, and per-second serving
//! traces.

use std::collections::HashMap;
use std::time::Duration;

use phoenix_cluster::{ClusterState, NodeId, PodKey, Resources};
use phoenix_core::actions::{diff_states, mode_shift_actions, Action};
use phoenix_core::policies::ResiliencePolicy;
use phoenix_core::spec::{AppId, ServingMode, Workload};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::events::EventQueue;
use crate::latency::LatencyModel;
use crate::scenario::{rack_members, zone_members, Scenario, ScenarioKind};
use crate::time::SimTime;

/// Simulator configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct SimConfig {
    /// Phoenix agent monitor period (§5: 15 s, tunable).
    pub monitor_interval: SimTime,
    /// Node-monitor grace: a silent kubelet is declared failed after this
    /// long (yields the paper's ≈100 s detection together with the tick).
    pub heartbeat_grace: SimTime,
    /// Serving-status sampling period for the output trace.
    pub sample_interval: SimTime,
    /// Pod lifecycle latencies.
    pub latency: LatencyModel,
    /// RNG seed (latency sampling).
    pub seed: u64,
}

impl Default for SimConfig {
    fn default() -> SimConfig {
        SimConfig {
            monitor_interval: SimTime::from_secs(15),
            heartbeat_grace: SimTime::from_secs(90),
            sample_interval: SimTime::from_secs(1),
            latency: LatencyModel::default(),
            seed: 7,
        }
    }
}

/// What a [`Milestone`] marks.
///
/// This used to be a bare `&'static str` label, which blocked new event
/// kinds from emitting milestones without stringly-typed drift; the enum
/// keeps the old labels available through [`MilestoneKind::label`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MilestoneKind {
    /// Kubelets stopped (the ground truth, before detection).
    Failure,
    /// The node monitor declared dead kubelets failed.
    Detected,
    /// The agent produced a plan.
    Plan,
    /// The agent issued at least one action.
    ActionsIssued,
    /// All in-flight actions of a recovery completed.
    Recovered,
    /// Stopped kubelets came back.
    NodesRestored,
    /// Nodes lost part of their capacity (gray failure).
    Degraded,
    /// Degraded nodes returned to nominal capacity.
    CapacityRestored,
    /// An application's demand surged mid-run.
    Surge,
}

impl MilestoneKind {
    /// The legacy string label (`"failure"`, `"detected"`, …) used by
    /// reports and [`SimTrace::first`].
    pub fn label(self) -> &'static str {
        match self {
            MilestoneKind::Failure => "failure",
            MilestoneKind::Detected => "detected",
            MilestoneKind::Plan => "plan",
            MilestoneKind::ActionsIssued => "actions-issued",
            MilestoneKind::Recovered => "recovered",
            MilestoneKind::NodesRestored => "nodes-restored",
            MilestoneKind::Degraded => "degraded",
            MilestoneKind::CapacityRestored => "capacity-restored",
            MilestoneKind::Surge => "surge",
        }
    }
}

/// A labelled moment in the run (the `t1…t5` markers of Fig. 6).
#[derive(Debug, Clone, PartialEq)]
pub struct Milestone {
    /// When it happened.
    pub at: SimTime,
    /// What it marks.
    pub kind: MilestoneKind,
}

impl Milestone {
    /// The milestone's string label (see [`MilestoneKind::label`]).
    pub fn label(&self) -> &'static str {
        self.kind.label()
    }
}

/// Pods serving user traffic at one sample instant.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceSample {
    /// Sample time.
    pub at: SimTime,
    /// Sorted list of serving pods.
    pub serving: Vec<PodKey>,
    /// Served utility at this instant: every serving pod contributes its
    /// service's current-mode utility weight, normalized by replica count,
    /// so a fully-served service contributes exactly its weight. Mode-less
    /// workloads weigh every service 1.0 — utility is then the count of
    /// fully-served services.
    pub utility: f64,
}

/// Full output of a simulation run.
#[derive(Debug, Clone, Default)]
pub struct SimTrace {
    /// Serving status over time.
    pub samples: Vec<TraceSample>,
    /// Milestones in time order.
    pub milestones: Vec<Milestone>,
    /// `(when, how long)` for every planning invocation.
    pub plans: Vec<(SimTime, Duration)>,
}

impl SimTrace {
    /// Serving pods at the latest sample ≤ `t` (empty before first sample).
    pub fn serving_at(&self, t: SimTime) -> &[PodKey] {
        match self.samples.binary_search_by_key(&t, |s| s.at) {
            Ok(i) => &self.samples[i].serving,
            Err(0) => &[],
            Err(i) => &self.samples[i - 1].serving,
        }
    }

    /// Served utility at the latest sample ≤ `t` (0.0 before first sample).
    pub fn utility_at(&self, t: SimTime) -> f64 {
        match self.samples.binary_search_by_key(&t, |s| s.at) {
            Ok(i) => self.samples[i].utility,
            Err(0) => 0.0,
            Err(i) => self.samples[i - 1].utility,
        }
    }

    /// Is every replica of `(app, service)` serving at `t`?
    pub fn service_up(&self, workload: &Workload, app: u32, service: u32, t: SimTime) -> bool {
        let spec = workload
            .app(phoenix_core::spec::AppId::new(app))
            .service(phoenix_core::spec::ServiceId::new(service));
        let serving = self.serving_at(t);
        (0..spec.replicas).all(|r| serving.binary_search(&PodKey::new(app, service, r)).is_ok())
    }

    /// First milestone with `label`, if any.
    pub fn first(&self, label: &str) -> Option<SimTime> {
        self.milestones
            .iter()
            .find(|m| m.kind.label() == label)
            .map(|m| m.at)
    }

    /// First milestone of `kind`, if any.
    pub fn first_kind(&self, kind: MilestoneKind) -> Option<SimTime> {
        self.milestones
            .iter()
            .find(|m| m.kind == kind)
            .map(|m| m.at)
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Phase {
    Starting,
    Running,
    Terminating,
}

#[derive(Debug, Clone)]
enum Event {
    Scenario(ScenarioKind),
    MonitorTick,
    Sample,
    DeleteDone(PodKey),
    /// Issue a start: the capacity it needs was freed by deletions whose
    /// completion events fire strictly earlier. `mode` is the serving mode
    /// the plan chose for the pod's service (always `Full` on mode-less
    /// workloads) — the booking is sized to that mode's demand.
    StartIssued {
        pod: PodKey,
        node: NodeId,
        mode: ServingMode,
        ready_at: SimTime,
    },
    /// Issue a migration (start replacement, reroute, delete original).
    /// The replacement instance comes up in the plan's chosen `mode`.
    MigrateIssued {
        pod: PodKey,
        to: NodeId,
        mode: ServingMode,
        done_at: SimTime,
    },
    /// An in-place serving-mode reconfiguration reached the pod: resize
    /// its booking and flip the ledger. Only emitted for modal workloads.
    ModeShiftApplied {
        pod: PodKey,
        to: ServingMode,
    },
    StartDone(PodKey),
}

/// Marks dead kubelets; returns `true` when any state actually changed.
fn stop_kubelets(
    nodes: &[NodeId],
    alive: &mut [bool],
    stopped_at: &mut [SimTime],
    now: SimTime,
) -> bool {
    let mut any = false;
    for node in nodes {
        let Some(a) = alive.get_mut(node.index()) else {
            continue; // out-of-shape scenario id: ignore defensively
        };
        if *a {
            *a = false;
            stopped_at[node.index()] = now;
            any = true;
        }
    }
    any
}

/// Marks kubelets back up; returns `true` when any state actually changed.
fn start_kubelets(nodes: &[NodeId], alive: &mut [bool]) -> bool {
    let mut any = false;
    for node in nodes {
        let Some(a) = alive.get_mut(node.index()) else {
            continue;
        };
        if !*a {
            *a = true;
            any = true;
        }
    }
    any
}

/// The captured `t = 0` steady state of one `(workload, policy, cluster
/// shape)` triple: the policy's cold plan over the healthy cluster,
/// recorded as an ordered assignment list.
///
/// That plan is a pure function of its three inputs and is *not* part of
/// the trace ([`SimTrace::plans`] starts at the first in-run replan), so
/// trial fan-outs — campaign cells, hunt candidates, shrink probes — can
/// compute it **once** per `(policy, shape)` and hand it to
/// [`simulate_from`], which replays the list in captured order instead of
/// re-planning the identical cold start per trial. Replay is byte-exact:
/// assignments land in the same order the plan's own iteration produced,
/// so downstream pod-list order (and everything keyed on it) matches a
/// cold [`simulate`] bit for bit.
#[derive(Debug, Clone)]
pub struct SteadyState {
    /// The per-node capacities the plan was computed for.
    capacities: Vec<Resources>,
    /// `(pod, node, demand, mode)` in the plan's own assignment order.
    assigns: Vec<(PodKey, NodeId, Resources, ServingMode)>,
}

impl SteadyState {
    /// Plans `workload` under `policy` on a fresh healthy cluster with
    /// `capacities` and captures the resulting steady state.
    pub fn compute(
        workload: &Workload,
        policy: &dyn ResiliencePolicy,
        capacities: &[Resources],
    ) -> SteadyState {
        let state = ClusterState::new(capacities.iter().copied());
        let initial = policy.plan(workload, &state);
        let assigns = initial
            .target
            .assignments()
            .map(|(pod, node, demand)| (pod, node, demand, initial.modes.mode_of_pod(pod)))
            .collect();
        SteadyState {
            capacities: capacities.to_vec(),
            assigns,
        }
    }

    /// True when this steady state was computed for exactly `capacities`
    /// (bit-compared — a shape mismatch means the capture must not be
    /// replayed).
    fn matches(&self, capacities: &[Resources]) -> bool {
        self.capacities.len() == capacities.len()
            && self.capacities.iter().zip(capacities).all(|(a, b)| {
                a.cpu.to_bits() == b.cpu.to_bits() && a.mem.to_bits() == b.mem.to_bits()
            })
    }
}

/// Runs `scenario` under `policy` until `horizon`.
///
/// The initial state is the policy's own plan over the full cluster,
/// applied instantaneously at `t = 0` (steady state before the disaster).
///
/// Scenarios restricted to the legacy stop/start vocabulary behave
/// **bit-for-bit** as before the richer event kinds existed: the flap
/// jitter stream is a dedicated RNG (never advanced unless a flap fires)
/// and the workload is only copied when a surge rewrites it.
pub fn simulate(
    workload: &Workload,
    policy: &dyn ResiliencePolicy,
    scenario: &Scenario,
    config: &SimConfig,
    horizon: SimTime,
) -> SimTrace {
    simulate_from(workload, policy, scenario, config, horizon, None)
}

/// [`simulate`] with an optional precomputed [`SteadyState`].
///
/// When `steady` is present, was computed for this `workload` and
/// `policy`, and its cluster shape matches `scenario`'s, the `t = 0` plan
/// is replayed from the capture instead of recomputed — byte-identical
/// output, minus one cold plan per call. A shape mismatch (e.g. a shrink
/// probe that dropped trailing nodes) silently falls back to planning
/// cold; a capture from a *different* workload or policy is the caller's
/// bug and silently corrupts the run, so thread those pairs carefully.
pub fn simulate_from(
    workload: &Workload,
    policy: &dyn ResiliencePolicy,
    scenario: &Scenario,
    config: &SimConfig,
    horizon: SimTime,
    steady: Option<&SteadyState>,
) -> SimTrace {
    let mut rng = StdRng::seed_from_u64(config.seed);
    // Flap jitter comes out of its own stream so flapping scenarios do
    // not perturb the pod-latency samples of co-scheduled events (and
    // legacy scenarios never touch it at all).
    let mut flap_rng = StdRng::seed_from_u64(config.seed ^ 0xF1A9_0000_F1A9_0000);
    let mut queue: EventQueue<Event> = EventQueue::new();
    let mut trace = SimTrace::default();
    // One handle for the whole run. Per-cell runs execute inside the
    // campaign fan-out, so everything recorded here must be commutative
    // (sums only) for the deterministic plane to stay thread-invariant.
    let obs = phoenix_obs::global();

    // Control-plane view of the cluster.
    let mut state = ClusterState::new(scenario.node_capacities.iter().copied());
    // Ground truth about kubelets and gray capacity.
    let n = scenario.node_count();
    let mut kubelet_alive = vec![true; n];
    let mut kubelet_stopped_at = vec![SimTime::ZERO; n];
    let mut degrade_truth = vec![1.0f64; n];

    let mut phase: HashMap<PodKey, Phase> = HashMap::new();
    // Which serving mode each live pod currently runs in. Absent = `Full`,
    // so mode-less workloads never touch it meaningfully.
    let mut pod_mode: HashMap<PodKey, ServingMode> = HashMap::new();
    let mut actions_in_flight: usize = 0;
    let mut dirty = false;
    let mut failure_pending_recovery = false;
    // Copy-on-surge workload: `None` means the original is still current.
    let mut surged: Option<Workload> = None;

    // Steady state at t = 0: replay the capture when its shape matches,
    // else plan cold — identical output either way, because the cold plan
    // is a pure function of (workload, policy, capacities) and the capture
    // preserves its assignment order.
    match steady.filter(|s| s.matches(&scenario.node_capacities)) {
        Some(s) => {
            for &(pod, node, demand, mode) in &s.assigns {
                state.assign(pod, demand, node).expect("steady plan fits");
                phase.insert(pod, Phase::Running);
                pod_mode.insert(pod, mode);
            }
        }
        None => {
            let initial = policy.plan(workload, &state);
            for (pod, node, demand) in initial.target.assignments() {
                state.assign(pod, demand, node).expect("initial plan fits");
                phase.insert(pod, Phase::Running);
                pod_mode.insert(pod, initial.modes.mode_of_pod(pod));
            }
        }
    }

    for ev in &scenario.events {
        queue.schedule(ev.at, Event::Scenario(ev.kind.clone()));
    }
    queue.schedule(config.monitor_interval, Event::MonitorTick);
    queue.schedule(SimTime::ZERO, Event::Sample);

    while let Some((now, event)) = queue.pop() {
        if now > horizon {
            break;
        }
        obs.incr(phoenix_obs::Counter::SimEvents);
        match event {
            Event::Scenario(ScenarioKind::KubeletStop(nodes)) => {
                if stop_kubelets(&nodes, &mut kubelet_alive, &mut kubelet_stopped_at, now) {
                    trace.milestones.push(Milestone {
                        at: now,
                        kind: MilestoneKind::Failure,
                    });
                }
            }
            Event::Scenario(ScenarioKind::KubeletStart(nodes)) => {
                if start_kubelets(&nodes, &mut kubelet_alive) {
                    trace.milestones.push(Milestone {
                        at: now,
                        kind: MilestoneKind::NodesRestored,
                    });
                }
            }
            Event::Scenario(ScenarioKind::ZoneOutage { zones, zone }) => {
                let members: Vec<NodeId> = zone_members(n, zones, zone)
                    .into_iter()
                    .map(NodeId::new)
                    .collect();
                if stop_kubelets(&members, &mut kubelet_alive, &mut kubelet_stopped_at, now) {
                    trace.milestones.push(Milestone {
                        at: now,
                        kind: MilestoneKind::Failure,
                    });
                }
            }
            Event::Scenario(ScenarioKind::ZoneRestore { zones, zone }) => {
                let members: Vec<NodeId> = zone_members(n, zones, zone)
                    .into_iter()
                    .map(NodeId::new)
                    .collect();
                if start_kubelets(&members, &mut kubelet_alive) {
                    trace.milestones.push(Milestone {
                        at: now,
                        kind: MilestoneKind::NodesRestored,
                    });
                }
            }
            Event::Scenario(ScenarioKind::RackOutage { racks, rack }) => {
                let members: Vec<NodeId> = rack_members(n, racks, rack)
                    .into_iter()
                    .map(NodeId::new)
                    .collect();
                if stop_kubelets(&members, &mut kubelet_alive, &mut kubelet_stopped_at, now) {
                    trace.milestones.push(Milestone {
                        at: now,
                        kind: MilestoneKind::Failure,
                    });
                }
            }
            Event::Scenario(ScenarioKind::RackRestore { racks, rack }) => {
                let members: Vec<NodeId> = rack_members(n, racks, rack)
                    .into_iter()
                    .map(NodeId::new)
                    .collect();
                if start_kubelets(&members, &mut kubelet_alive) {
                    trace.milestones.push(Milestone {
                        at: now,
                        kind: MilestoneKind::NodesRestored,
                    });
                }
            }
            Event::Scenario(ScenarioKind::Flap {
                nodes,
                down,
                up,
                cycles,
                jitter_ms,
            }) => {
                if cycles > 0 {
                    if stop_kubelets(&nodes, &mut kubelet_alive, &mut kubelet_stopped_at, now) {
                        trace.milestones.push(Milestone {
                            at: now,
                            kind: MilestoneKind::Failure,
                        });
                    }
                    let jitter = |rng: &mut StdRng, cap: u64| {
                        SimTime::from_millis(if cap > 0 { rng.gen_range(0..=cap) } else { 0 })
                    };
                    // The restart's jitter is capped below the serving
                    // dwell when another cycle follows: an unbounded draw
                    // could push this cycle's KubeletStart past the next
                    // cycle's stop, silently erasing a down phase.
                    let up_cap = if cycles > 1 {
                        jitter_ms.min(up.as_millis().saturating_sub(1))
                    } else {
                        jitter_ms
                    };
                    let back_up = now + down + jitter(&mut flap_rng, up_cap);
                    queue.schedule(
                        back_up,
                        Event::Scenario(ScenarioKind::KubeletStart(nodes.clone())),
                    );
                    if cycles > 1 {
                        let next_drop = now + down + up + jitter(&mut flap_rng, jitter_ms);
                        queue.schedule(
                            next_drop,
                            Event::Scenario(ScenarioKind::Flap {
                                nodes,
                                down,
                                up,
                                cycles: cycles - 1,
                                jitter_ms,
                            }),
                        );
                    }
                }
            }
            Event::Scenario(ScenarioKind::CapacityDegrade { nodes, factor }) => {
                let factor = factor.clamp(0.0, 1.0);
                let mut any = false;
                for node in nodes {
                    if let Some(t) = degrade_truth.get_mut(node.index()) {
                        if t.to_bits() != factor.to_bits() {
                            *t = factor;
                            any = true;
                        }
                    }
                }
                if any {
                    trace.milestones.push(Milestone {
                        at: now,
                        kind: MilestoneKind::Degraded,
                    });
                }
            }
            Event::Scenario(ScenarioKind::CapacityRestore { nodes }) => {
                let mut any = false;
                for node in nodes {
                    if let Some(t) = degrade_truth.get_mut(node.index()) {
                        if t.to_bits() != 1.0f64.to_bits() {
                            *t = 1.0;
                            any = true;
                        }
                    }
                }
                if any {
                    trace.milestones.push(Milestone {
                        at: now,
                        kind: MilestoneKind::CapacityRestored,
                    });
                }
            }
            Event::Scenario(ScenarioKind::DemandSurge {
                app,
                demand_factor,
                replica_factor,
            }) => {
                if (app as usize) < workload.app_count() {
                    surged.get_or_insert_with(|| workload.clone()).scale_app(
                        AppId::new(app),
                        demand_factor,
                        replica_factor,
                    );
                    trace.milestones.push(Milestone {
                        at: now,
                        kind: MilestoneKind::Surge,
                    });
                    dirty = true;
                }
            }
            Event::MonitorTick => {
                // Detect dead kubelets past the grace period.
                let mut detected_failure = false;
                let mut detected_recovery = false;
                for i in 0..n {
                    let node = NodeId::new(i as u32);
                    if !kubelet_alive[i]
                        && state.is_healthy(node)
                        && now.saturating_sub(kubelet_stopped_at[i]) >= config.heartbeat_grace
                    {
                        for (pod, _) in state.fail_node(node) {
                            phase.remove(&pod);
                            pod_mode.remove(&pod);
                        }
                        detected_failure = true;
                    }
                    if kubelet_alive[i] && !state.is_healthy(node) {
                        state.restore_node(node);
                        detected_recovery = true;
                    }
                }
                // Gray capacity changes are visible at the very next tick:
                // a degraded kubelet still heartbeats, it just reports a
                // smaller allocatable. Converge the control-plane view to
                // the ground truth, evicting overflowing pods.
                let mut degrade_changed = false;
                let mut degrade_evicted = false;
                for i in 0..n {
                    let node = NodeId::new(i as u32);
                    if state.degrade_factor(node).to_bits() != degrade_truth[i].to_bits() {
                        degrade_changed = true;
                        for (pod, _) in state.set_degrade(node, degrade_truth[i]) {
                            phase.remove(&pod);
                            pod_mode.remove(&pod);
                            degrade_evicted = true;
                        }
                    }
                }
                if detected_failure {
                    trace.milestones.push(Milestone {
                        at: now,
                        kind: MilestoneKind::Detected,
                    });
                    failure_pending_recovery = true;
                    dirty = true;
                }
                if detected_recovery || degrade_changed {
                    dirty = true;
                }
                if degrade_evicted {
                    // Evictions took services down; track the replan that
                    // restores them like any other recovery.
                    failure_pending_recovery = true;
                }

                if dirty && actions_in_flight == 0 {
                    let wl = surged.as_ref().unwrap_or(workload);
                    let modal = wl.has_modes();
                    let plan = policy.plan(wl, &state);
                    obs.incr(phoenix_obs::Counter::SimPlans);
                    obs.record_duration(phoenix_obs::Phase::Replan, plan.planning_time);
                    trace.plans.push((now, plan.planning_time));
                    trace.milestones.push(Milestone {
                        at: now,
                        kind: MilestoneKind::Plan,
                    });
                    let mut actions = diff_states(&state, &plan.target);
                    if modal {
                        // Placement-stable pods whose chosen mode changed
                        // get an in-place reconfiguration instead of a
                        // restart; the splice keeps the safe order
                        // (deletes → migrations → shifts → starts).
                        let shifts = mode_shift_actions(
                            &state,
                            &plan.target,
                            |p| pod_mode.get(&p).copied().unwrap_or(ServingMode::Full),
                            &plan.modes,
                        );
                        actions.insert_mode_shifts(shifts);
                    }
                    dirty = false;
                    if !actions.is_empty() {
                        trace.milestones.push(Milestone {
                            at: now,
                            kind: MilestoneKind::ActionsIssued,
                        });
                        // Phase A: deletions, issued back-to-back.
                        let mut cursor = now;
                        let mut last_delete_done = now;
                        for a in &actions.actions {
                            if let Action::Delete { pod, .. } = *a {
                                cursor += config.latency.issue_overhead.sample(&mut rng);
                                let done = cursor + config.latency.delete.sample(&mut rng);
                                phase.insert(pod, Phase::Terminating);
                                queue.schedule(done, Event::DeleteDone(pod));
                                actions_in_flight += 1;
                                last_delete_done = last_delete_done.max(done);
                            }
                        }
                        // Phase B: migrations and starts are *issued* only
                        // after the deletions have freed their capacity in
                        // the live state (their events fire later).
                        let mut cursor =
                            last_delete_done + config.latency.issue_overhead.sample(&mut rng);
                        for a in &actions.actions {
                            match *a {
                                Action::Migrate { pod, to, .. } => {
                                    cursor += config.latency.issue_overhead.sample(&mut rng);
                                    let done_at = cursor
                                        + config.latency.start.sample(&mut rng)
                                        + config.latency.reroute.sample(&mut rng);
                                    let mode = plan.modes.mode_of_pod(pod);
                                    queue.schedule(
                                        cursor,
                                        Event::MigrateIssued {
                                            pod,
                                            to,
                                            mode,
                                            done_at,
                                        },
                                    );
                                    actions_in_flight += 1;
                                }
                                Action::ModeShift { pod, to, .. } => {
                                    // A config push plus traffic reroute:
                                    // no pod restart, so only the reroute
                                    // latency applies.
                                    cursor += config.latency.issue_overhead.sample(&mut rng);
                                    let apply_at = cursor + config.latency.reroute.sample(&mut rng);
                                    queue.schedule(apply_at, Event::ModeShiftApplied { pod, to });
                                    actions_in_flight += 1;
                                }
                                Action::Start { pod, node } => {
                                    cursor += config.latency.issue_overhead.sample(&mut rng);
                                    let ready_at = cursor + config.latency.start.sample(&mut rng);
                                    let mode = plan.modes.mode_of_pod(pod);
                                    queue.schedule(
                                        cursor,
                                        Event::StartIssued {
                                            pod,
                                            node,
                                            mode,
                                            ready_at,
                                        },
                                    );
                                    actions_in_flight += 1;
                                }
                                Action::Delete { .. } => {}
                            }
                        }
                    } else if failure_pending_recovery {
                        // Nothing to do (e.g. NoAdapt): recovery is trivially
                        // "complete".
                        failure_pending_recovery = false;
                    }
                }
                let next = now + config.monitor_interval;
                if next <= horizon {
                    queue.schedule(next, Event::MonitorTick);
                }
            }
            Event::DeleteDone(pod) => {
                if phase.get(&pod) == Some(&Phase::Terminating) {
                    let _ = state.remove(pod);
                    phase.remove(&pod);
                    pod_mode.remove(&pod);
                }
                actions_in_flight = actions_in_flight.saturating_sub(1);
                if actions_in_flight == 0 && failure_pending_recovery {
                    trace.milestones.push(Milestone {
                        at: now,
                        kind: MilestoneKind::Recovered,
                    });
                    failure_pending_recovery = false;
                }
            }
            Event::StartIssued {
                pod,
                node,
                mode,
                ready_at,
            } => {
                // Book the chosen mode's demand; `mode_demand(Full)` is the
                // plain service demand, so mode-less plans book as before.
                let looked_up = surged
                    .as_ref()
                    .unwrap_or(workload)
                    .service_of_pod(pod)
                    .map(|(_, s)| s.mode_demand(mode));
                let Some(demand) = looked_up else {
                    // A surge shrank the app between plan and issue and the
                    // pod no longer exists: drop the start and replan.
                    actions_in_flight = actions_in_flight.saturating_sub(1);
                    dirty = true;
                    if actions_in_flight == 0 && failure_pending_recovery {
                        trace.milestones.push(Milestone {
                            at: now,
                            kind: MilestoneKind::Recovered,
                        });
                        failure_pending_recovery = false;
                    }
                    continue;
                };
                match state.assign(pod, demand, node) {
                    Ok(()) => {
                        phase.insert(pod, Phase::Starting);
                        pod_mode.insert(pod, mode);
                        queue.schedule(ready_at, Event::StartDone(pod));
                    }
                    Err(_) => {
                        // The node failed (or shrank) between plan and
                        // issue: drop the start and replan at next tick.
                        actions_in_flight = actions_in_flight.saturating_sub(1);
                        dirty = true;
                        if actions_in_flight == 0 && failure_pending_recovery {
                            trace.milestones.push(Milestone {
                                at: now,
                                kind: MilestoneKind::Recovered,
                            });
                            failure_pending_recovery = false;
                        }
                    }
                }
            }
            Event::MigrateIssued {
                pod,
                to,
                mode,
                done_at,
            } => {
                // Old instance keeps serving while the replacement starts;
                // the booking moves atomically, falling back to staying put
                // when the target cannot host the pod anymore.
                if state.node_of(pod).is_some() && state.migrate(pod, to).is_ok() {
                    let wl = surged.as_ref().unwrap_or(workload);
                    if wl.has_modes() {
                        // The replacement instance comes up in the plan's
                        // chosen mode: rebook at that mode's demand. Shrinks
                        // always fit; a grow that no longer fits keeps the
                        // old booking and lets the next tick replan.
                        let want = wl.service_of_pod(pod).map(|(_, s)| s.mode_demand(mode));
                        match want {
                            Some(want) if state.demand_of(pod) != Some(want) => {
                                let (node, old) = state.remove(pod).expect("just migrated");
                                if state.assign(pod, want, node).is_ok() {
                                    pod_mode.insert(pod, mode);
                                } else {
                                    state.assign(pod, old, node).expect("old booking fits");
                                    dirty = true;
                                }
                            }
                            Some(_) => {
                                pod_mode.insert(pod, mode);
                            }
                            None => {}
                        }
                    }
                    queue.schedule(done_at, Event::StartDone(pod));
                } else {
                    actions_in_flight = actions_in_flight.saturating_sub(1);
                    dirty = true;
                    if actions_in_flight == 0 && failure_pending_recovery {
                        trace.milestones.push(Milestone {
                            at: now,
                            kind: MilestoneKind::Recovered,
                        });
                        failure_pending_recovery = false;
                    }
                }
            }
            Event::ModeShiftApplied { pod, to } => {
                obs.incr(phoenix_obs::Counter::SimModeShifts);
                // Resize the live booking to the new mode's demand. The pod
                // never stops serving: a shift is a config flip, not a
                // restart. A grow that no longer fits (capacity changed
                // since the plan) keeps the old booking and replans.
                let want = surged
                    .as_ref()
                    .unwrap_or(workload)
                    .service_of_pod(pod)
                    .map(|(_, s)| s.mode_demand(to));
                match (state.node_of(pod), want) {
                    (Some(node), Some(want)) => {
                        if state.demand_of(pod) == Some(want) {
                            pod_mode.insert(pod, to);
                        } else {
                            let (_, old) = state.remove(pod).expect("pod is assigned");
                            if state.assign(pod, want, node).is_ok() {
                                pod_mode.insert(pod, to);
                            } else {
                                state.assign(pod, old, node).expect("old booking fits");
                                dirty = true;
                            }
                        }
                    }
                    // The pod was evicted (or the service vanished in a
                    // surge) between plan and apply: nothing to shift.
                    _ => dirty = true,
                }
                actions_in_flight = actions_in_flight.saturating_sub(1);
                if actions_in_flight == 0 && failure_pending_recovery {
                    trace.milestones.push(Milestone {
                        at: now,
                        kind: MilestoneKind::Recovered,
                    });
                    failure_pending_recovery = false;
                }
            }
            Event::StartDone(pod) => {
                if state.node_of(pod).is_some() {
                    phase.insert(pod, Phase::Running);
                }
                actions_in_flight = actions_in_flight.saturating_sub(1);
                if actions_in_flight == 0 && failure_pending_recovery {
                    trace.milestones.push(Milestone {
                        at: now,
                        kind: MilestoneKind::Recovered,
                    });
                    failure_pending_recovery = false;
                }
            }
            Event::Sample => {
                let mut serving: Vec<PodKey> = state
                    .assignments()
                    .filter(|&(pod, node, _)| {
                        kubelet_alive[node.index()] && phase.get(&pod) == Some(&Phase::Running)
                    })
                    .map(|(pod, _, _)| pod)
                    .collect();
                serving.sort();
                let wl = surged.as_ref().unwrap_or(workload);
                let utility = serving
                    .iter()
                    .filter_map(|&pod| {
                        let (_, svc) = wl.service_of_pod(pod)?;
                        let mode = pod_mode.get(&pod).copied().unwrap_or(ServingMode::Full);
                        Some(svc.mode_utility(mode) / f64::from(svc.replicas))
                    })
                    .sum();
                trace.samples.push(TraceSample {
                    at: now,
                    serving,
                    utility,
                });
                let next = now + config.sample_interval;
                if next <= horizon {
                    queue.schedule(next, Event::Sample);
                }
            }
        }
    }
    trace.milestones.sort_by_key(|m| m.at);
    obs.add(
        phoenix_obs::Counter::SimMilestones,
        trace.milestones.len() as u64,
    );
    trace
}

#[cfg(test)]
mod tests {
    use super::*;
    use phoenix_cluster::Resources;
    use phoenix_core::policies::{DefaultPolicy, PhoenixPolicy};
    use phoenix_core::spec::AppSpecBuilder;
    use phoenix_core::tags::Criticality;

    /// One app: 2-CPU critical frontend, 2-CPU optional chat.
    fn workload() -> Workload {
        let mut b = AppSpecBuilder::new("web");
        let fe = b.add_service("fe", Resources::cpu(2.0), Some(Criticality::C1), 1);
        let chat = b.add_service("chat", Resources::cpu(2.0), Some(Criticality::C5), 1);
        b.add_dependency(fe, chat);
        Workload::new(vec![b.build().unwrap()])
    }

    fn failure_scenario() -> Scenario {
        let mut s = Scenario::new(2, Resources::cpu(2.0));
        // Fail the frontend's node at 300 s, restore at 900 s.
        s.kubelet_stop_at(SimTime::from_secs(300), [0, 1]);
        s.kubelet_start_at(SimTime::from_secs(900), [0, 1]);
        s
    }

    #[test]
    fn steady_state_serves_everything() {
        let w = workload();
        let trace = simulate(
            &w,
            &PhoenixPolicy::fair(),
            &Scenario::new(2, Resources::cpu(2.0)),
            &SimConfig::default(),
            SimTime::from_secs(60),
        );
        assert!(trace.service_up(&w, 0, 0, SimTime::from_secs(30)));
        assert!(trace.service_up(&w, 0, 1, SimTime::from_secs(30)));
        assert!(trace.milestones.is_empty());
    }

    #[test]
    fn detection_roughly_grace_plus_tick() {
        let w = workload();
        let mut s = Scenario::new(3, Resources::cpu(2.0));
        s.kubelet_stop_at(SimTime::from_secs(300), [2]);
        let trace = simulate(
            &w,
            &PhoenixPolicy::fair(),
            &s,
            &SimConfig::default(),
            SimTime::from_secs(600),
        );
        let detected = trace.first("detected").expect("failure detected");
        let delay = detected
            .saturating_sub(SimTime::from_secs(300))
            .as_secs_f64();
        assert!(
            (90.0..=110.0).contains(&delay),
            "detection delay {delay}s outside the ≈100 s band"
        );
    }

    #[test]
    fn phoenix_recovers_critical_service_before_nodes_return() {
        let w = workload();
        // 2 nodes, both fail? That kills everything. Use 3 nodes: fail two,
        // leaving one 2-CPU node — room for exactly the C1 frontend.
        let mut s = Scenario::new(3, Resources::cpu(2.0));
        s.kubelet_stop_at(SimTime::from_secs(300), [0, 1]);
        s.kubelet_start_at(SimTime::from_secs(900), [0, 1]);
        let trace = simulate(
            &w,
            &PhoenixPolicy::fair(),
            &s,
            &SimConfig::default(),
            SimTime::from_secs(1400),
        );
        let recovered = trace.first("recovered").expect("recovery completes");
        assert!(
            recovered < SimTime::from_secs(900),
            "recovered at {recovered}"
        );
        // Critical service is up between recovery and node return…
        assert!(trace.service_up(&w, 0, 0, SimTime::from_secs(880)));
        // …and full recovery is < 4 min after the failure (paper claim).
        let failure = trace.first("failure").unwrap();
        assert!(
            recovered.saturating_sub(failure) < SimTime::from_secs(240),
            "recovery took {}",
            recovered.saturating_sub(failure)
        );
        // After nodes return, chat is spawned again.
        let end = SimTime::from_secs(1390);
        assert!(trace.service_up(&w, 0, 0, end));
        assert!(trace.service_up(&w, 0, 1, end), "chat restored after t5");
    }

    #[test]
    fn default_waits_for_nodes_to_return() {
        let w = workload();
        let mut s = Scenario::new(3, Resources::cpu(2.0));
        s.kubelet_stop_at(SimTime::from_secs(300), [0, 1]);
        s.kubelet_start_at(SimTime::from_secs(900), [0, 1]);
        let cfg = SimConfig::default();
        let trace = simulate(&w, &DefaultPolicy, &s, &cfg, SimTime::from_secs(1400));
        // Whichever pod was on the failed nodes stays down until restore…
        // Default spreads one pod per node across the 3 nodes; the two pods
        // on nodes 0/1 lose service at t1.
        let t_down = SimTime::from_secs(850);
        let up0 = trace.service_up(&w, 0, 0, t_down);
        let up1 = trace.service_up(&w, 0, 1, t_down);
        assert!(!(up0 && up1), "Default cannot restore both on one node");
        // After restore, everything returns.
        assert!(trace.service_up(&w, 0, 0, SimTime::from_secs(1390)));
        assert!(trace.service_up(&w, 0, 1, SimTime::from_secs(1390)));
    }

    #[test]
    fn warm_replanning_policy_matches_cold_phoenix_over_churn() {
        use phoenix_core::replan::IncrementalPhoenixPolicy;
        // A churn scenario: staggered failures, partial recovery, a second
        // failure wave. The warm-started controller must produce the same
        // simulation — identical serving samples and milestones — as the
        // cold pipeline; only planning latency may differ.
        let mut apps = Vec::new();
        for (name, price) in [("alpha", 3.0), ("beta", 1.0), ("gamma", 2.0)] {
            let mut b = AppSpecBuilder::new(name);
            let fe = b.add_service("fe", Resources::cpu(1.0), Some(Criticality::C1), 2);
            let mid = b.add_service("mid", Resources::cpu(1.0), Some(Criticality::C2), 1);
            let opt = b.add_service("opt", Resources::cpu(1.0), Some(Criticality::C5), 1);
            b.add_dependency(fe, mid);
            b.add_dependency(mid, opt);
            b.price_per_unit(price);
            apps.push(b.build().unwrap());
        }
        let w = Workload::new(apps);
        let mut s = Scenario::new(6, Resources::cpu(3.0));
        s.kubelet_stop_at(SimTime::from_secs(200), [0, 1]);
        s.kubelet_stop_at(SimTime::from_secs(600), [2]);
        s.kubelet_start_at(SimTime::from_secs(900), [0]);
        s.kubelet_stop_at(SimTime::from_secs(1200), [3]);
        s.kubelet_start_at(SimTime::from_secs(1500), [1, 2, 3]);
        let cfg = SimConfig::default();
        let horizon = SimTime::from_secs(1800);
        for (cold, warm) in [
            (PhoenixPolicy::fair(), IncrementalPhoenixPolicy::fair()),
            (PhoenixPolicy::cost(), IncrementalPhoenixPolicy::cost()),
        ] {
            let a = simulate(&w, &cold, &s, &cfg, horizon);
            let b = simulate(&w, &warm, &s, &cfg, horizon);
            assert_eq!(a.samples, b.samples, "{} diverged", cold.name());
            assert_eq!(a.milestones, b.milestones, "{} diverged", cold.name());
            assert_eq!(a.plans.len(), b.plans.len());
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let w = workload();
        let s = failure_scenario();
        let cfg = SimConfig::default();
        let a = simulate(
            &w,
            &PhoenixPolicy::fair(),
            &s,
            &cfg,
            SimTime::from_secs(1200),
        );
        let b = simulate(
            &w,
            &PhoenixPolicy::fair(),
            &s,
            &cfg,
            SimTime::from_secs(1200),
        );
        assert_eq!(a.samples, b.samples);
        assert_eq!(a.milestones, b.milestones);
    }

    #[test]
    fn capacity_degrade_evicts_and_phoenix_sheds_optional_tier() {
        // One 4-CPU node serving fe (2) + chat (2). At 300 s the node gray-
        // fails to 50 % capacity: 2 effective CPUs. The monitor applies the
        // shrink at its next tick, evicts the overflow, and Phoenix keeps
        // the C1 frontend while chat stays shed until capacity returns.
        let w = workload();
        let mut s = Scenario::new(1, Resources::cpu(4.0));
        s.capacity_degrade_at(SimTime::from_secs(300), [0], 0.5);
        s.capacity_restore_at(SimTime::from_secs(900), [0]);
        let trace = simulate(
            &w,
            &PhoenixPolicy::fair(),
            &s,
            &SimConfig::default(),
            SimTime::from_secs(1400),
        );
        let degraded = trace.first_kind(MilestoneKind::Degraded).unwrap();
        assert_eq!(degraded, SimTime::from_secs(300));
        // Both services serve before the degrade…
        assert!(trace.service_up(&w, 0, 0, SimTime::from_secs(250)));
        assert!(trace.service_up(&w, 0, 1, SimTime::from_secs(250)));
        // …after it settles only the critical frontend fits…
        assert!(trace.service_up(&w, 0, 0, SimTime::from_secs(800)));
        assert!(!trace.service_up(&w, 0, 1, SimTime::from_secs(800)));
        // …and the restore brings chat back.
        assert!(trace.first_kind(MilestoneKind::CapacityRestored).is_some());
        assert!(trace.service_up(&w, 0, 1, SimTime::from_secs(1390)));
    }

    #[test]
    fn modal_workload_serves_partial_utility_under_crunch() {
        use phoenix_core::spec::{ModeSpec, ServingMode};
        // Same shapes as `workload()`, but chat can degrade to a 1-CPU
        // read-only mode worth 0.6 of its full utility.
        let modal = {
            let mut b = AppSpecBuilder::new("web");
            b.add_service("fe", Resources::cpu(2.0), Some(Criticality::C1), 1);
            let chat = b.add_service("chat", Resources::cpu(2.0), Some(Criticality::C5), 1);
            b.service_modes(
                chat,
                vec![
                    ModeSpec::new(ServingMode::Full, Resources::cpu(2.0), 1.0),
                    ModeSpec::new(ServingMode::ReadOnly, Resources::cpu(1.0), 0.6),
                ],
            );
            Workload::new(vec![b.build().unwrap()])
        };
        let binary = workload();
        // One 4-CPU node gray-fails to 3 CPUs at 300 s, restores at 900 s.
        let mut s = Scenario::new(1, Resources::cpu(4.0));
        s.capacity_degrade_at(SimTime::from_secs(300), [0], 0.75);
        s.capacity_restore_at(SimTime::from_secs(900), [0]);
        let cfg = SimConfig::default();
        let horizon = SimTime::from_secs(1400);
        let m = simulate(&modal, &PhoenixPolicy::fair(), &s, &cfg, horizon);
        let b = simulate(&binary, &PhoenixPolicy::fair(), &s, &cfg, horizon);
        // Steady state: both serve every service at full weight.
        assert!((m.utility_at(SimTime::from_secs(250)) - 2.0).abs() < 1e-9);
        assert!((b.utility_at(SimTime::from_secs(250)) - 2.0).abs() < 1e-9);
        // Under the crunch the binary planner keeps only the frontend; the
        // modal planner also serves chat read-only — strictly more utility.
        assert!((b.utility_at(SimTime::from_secs(850)) - 1.0).abs() < 1e-9);
        assert!((m.utility_at(SimTime::from_secs(850)) - 1.6).abs() < 1e-9);
        // Capacity returns: both recover full utility (the modal path via
        // an in-place upgrade shift when chat stayed put).
        assert!((m.utility_at(SimTime::from_secs(1390)) - 2.0).abs() < 1e-9);
        assert!((b.utility_at(SimTime::from_secs(1390)) - 2.0).abs() < 1e-9);
        // The run stays deterministic with modes in play.
        let again = simulate(&modal, &PhoenixPolicy::fair(), &s, &cfg, horizon);
        assert_eq!(m.samples, again.samples);
        assert_eq!(m.milestones, again.milestones);
    }

    #[test]
    fn flap_cycles_stop_and_restart_repeatedly() {
        let w = workload();
        let mut s = Scenario::new(3, Resources::cpu(2.0));
        s.flap_at(
            SimTime::from_secs(300),
            [2],
            SimTime::from_secs(120),
            SimTime::from_secs(240),
            3,
            10_000,
        );
        let trace = simulate(
            &w,
            &PhoenixPolicy::fair(),
            &s,
            &SimConfig::default(),
            SimTime::from_secs(2400),
        );
        let failures = trace
            .milestones
            .iter()
            .filter(|m| m.kind == MilestoneKind::Failure)
            .count();
        let restores = trace
            .milestones
            .iter()
            .filter(|m| m.kind == MilestoneKind::NodesRestored)
            .count();
        assert_eq!(failures, 3, "milestones: {:?}", trace.milestones);
        assert_eq!(restores, 3);
        // Deterministic under the same seed, jitter included.
        let again = simulate(
            &w,
            &PhoenixPolicy::fair(),
            &s,
            &SimConfig::default(),
            SimTime::from_secs(2400),
        );
        assert_eq!(trace.milestones, again.milestones);
        assert_eq!(trace.samples, again.samples);
    }

    #[test]
    fn demand_surge_triggers_replan_onto_wider_footprint() {
        // Plenty of room: the surge doubles the app's replicas, and the
        // next tick plans + starts the new pods.
        let w = workload();
        let mut s = Scenario::new(4, Resources::cpu(4.0));
        s.demand_surge_at(SimTime::from_secs(300), 0, 1.0, 2.0);
        let trace = simulate(
            &w,
            &PhoenixPolicy::fair(),
            &s,
            &SimConfig::default(),
            SimTime::from_secs(900),
        );
        assert_eq!(
            trace.first_kind(MilestoneKind::Surge),
            Some(SimTime::from_secs(300))
        );
        let before = trace.serving_at(SimTime::from_secs(290)).len();
        let after = trace.serving_at(SimTime::from_secs(890)).len();
        assert_eq!(before, 2);
        assert_eq!(after, 4, "surged replicas must be serving");
    }

    #[test]
    fn zone_outage_maps_to_striped_members() {
        let w = workload();
        // 6 nodes, 3 zones: zone 1 = nodes {1, 4}.
        let mut s = Scenario::new(6, Resources::cpu(2.0));
        s.zone_outage_at(SimTime::from_secs(300), 3, 1, Some(SimTime::from_secs(900)));
        let trace = simulate(
            &w,
            &PhoenixPolicy::fair(),
            &s,
            &SimConfig::default(),
            SimTime::from_secs(1200),
        );
        // Equivalent explicit stop/start scripts the very same trace.
        let mut explicit = Scenario::new(6, Resources::cpu(2.0));
        explicit.kubelet_stop_at(SimTime::from_secs(300), [1, 4]);
        explicit.kubelet_start_at(SimTime::from_secs(900), [1, 4]);
        let reference = simulate(
            &w,
            &PhoenixPolicy::fair(),
            &explicit,
            &SimConfig::default(),
            SimTime::from_secs(1200),
        );
        assert_eq!(trace.samples, reference.samples);
        assert_eq!(trace.milestones, reference.milestones);
    }

    #[test]
    fn rack_outage_maps_to_contiguous_members() {
        let w = workload();
        // 6 nodes, 2 racks: rack 0 = nodes {0, 1, 2}.
        let mut s = Scenario::new(6, Resources::cpu(2.0));
        s.rack_outage_at(SimTime::from_secs(300), 2, 0, Some(SimTime::from_secs(900)));
        let trace = simulate(
            &w,
            &PhoenixPolicy::fair(),
            &s,
            &SimConfig::default(),
            SimTime::from_secs(1200),
        );
        let mut explicit = Scenario::new(6, Resources::cpu(2.0));
        explicit.kubelet_stop_at(SimTime::from_secs(300), [0, 1, 2]);
        explicit.kubelet_start_at(SimTime::from_secs(900), [0, 1, 2]);
        let reference = simulate(
            &w,
            &PhoenixPolicy::fair(),
            &explicit,
            &SimConfig::default(),
            SimTime::from_secs(1200),
        );
        assert_eq!(trace.samples, reference.samples);
        assert_eq!(trace.milestones, reference.milestones);
    }

    #[test]
    fn undetected_failure_stops_serving_immediately() {
        let w = workload();
        let mut s = Scenario::new(2, Resources::cpu(2.0));
        s.kubelet_stop_at(SimTime::from_secs(100), [0, 1]);
        let trace = simulate(
            &w,
            &PhoenixPolicy::fair(),
            &s,
            &SimConfig::default(),
            SimTime::from_secs(150),
        );
        // 10 s after the silent failure — long before detection — no pod
        // on the dead nodes serves traffic.
        assert!(trace.serving_at(SimTime::from_secs(110)).is_empty());
    }
}
