//! Seeded, deterministic generators for scenario *families*.
//!
//! A family is a shape of trouble — a cascading failure, a rolling
//! maintenance window, a correlated rack/zone blast radius, a demand
//! surge landing in the middle of a capacity crunch, a flap storm, or
//! creeping software aging. Each generator expands a
//! [`GeneratorConfig`] + seed into concrete [`ScenarioDoc`]s whose every
//! parameter came out of one seeded stream: the same seed always yields
//! byte-identical suites, so a suite can be regenerated, diffed, and
//! replayed instead of stored — and stored suites are still plain JSON
//! ([`crate::model::to_json`]).

use phoenix_kubesim::time::SimTime;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use crate::model::{EventDoc, ScenarioDoc, SuiteDoc};

/// The built-in scenario families.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Family {
    /// Staggered waves of node failures, each wave widening the hole,
    /// with late partial restores.
    Cascade,
    /// Nodes drained and rebooted in id order, one small group at a time
    /// — the planned-churn case where nothing should ever violate an RTO.
    RollingMaintenance,
    /// Whole zones or racks lost at once (PDU/switch blast radius),
    /// restored as a unit.
    CorrelatedBlastRadius,
    /// A demand surge landing while a chunk of the cluster is already
    /// down — cooperative degradation's hardest case.
    SurgeUnderCrunch,
    /// Groups of nodes flapping with seeded jitter.
    FlapStorm,
    /// Software aging: effective capacity creeping down in steps across a
    /// growing node subset, then healed.
    GrayAging,
}

impl Family {
    /// Every built-in family, in generation order.
    pub fn all() -> [Family; 6] {
        [
            Family::Cascade,
            Family::RollingMaintenance,
            Family::CorrelatedBlastRadius,
            Family::SurgeUnderCrunch,
            Family::FlapStorm,
            Family::GrayAging,
        ]
    }

    /// Stable slug used in docs, scorecards, and JSON.
    pub fn slug(self) -> &'static str {
        match self {
            Family::Cascade => "cascade",
            Family::RollingMaintenance => "rolling-maintenance",
            Family::CorrelatedBlastRadius => "correlated-blast-radius",
            Family::SurgeUnderCrunch => "surge-under-crunch",
            Family::FlapStorm => "flap-storm",
            Family::GrayAging => "gray-aging",
        }
    }
}

/// Knobs shared by every generator.
#[derive(Debug, Clone, PartialEq)]
pub struct GeneratorConfig {
    /// Cluster size.
    pub nodes: u32,
    /// Per-node CPU capacity.
    pub node_cpu: f64,
    /// Scenarios generated per family.
    pub scenarios_per_family: usize,
    /// Number of applications surge events may target.
    pub apps: u32,
    /// Master seed; every scenario derives its own stream from it.
    pub seed: u64,
}

impl Default for GeneratorConfig {
    fn default() -> GeneratorConfig {
        GeneratorConfig {
            nodes: 10,
            node_cpu: 8.0,
            scenarios_per_family: 5,
            apps: 3,
            seed: 42,
        }
    }
}

/// Per-scenario RNG: one stream per `(seed, family, index)`, so adding a
/// family or changing one scenario count never shifts another scenario's
/// bytes.
fn scenario_rng(cfg: &GeneratorConfig, family: Family, index: usize) -> StdRng {
    let fam = Family::all()
        .iter()
        .position(|&f| f == family)
        .expect("family is built in") as u64;
    StdRng::seed_from_u64(
        cfg.seed
            .wrapping_mul(0x0000_0100_0000_01b3)
            .wrapping_add(fam * 10_007)
            .wrapping_add(index as u64),
    )
}

/// `count` distinct random node ids (ascending), like a failure draw.
fn pick_nodes(rng: &mut StdRng, nodes: u32, count: usize) -> Vec<u32> {
    let mut ids: Vec<u32> = (0..nodes).collect();
    ids.shuffle(rng);
    ids.truncate(count.clamp(1, nodes as usize));
    ids.sort_unstable();
    ids
}

fn doc(cfg: &GeneratorConfig, family: Family, index: usize, horizon: SimTime) -> ScenarioDoc {
    ScenarioDoc {
        name: format!("{}-{index:02}", family.slug()),
        family: family.slug().to_string(),
        nodes: cfg.nodes,
        node_cpu: cfg.node_cpu,
        node_mem: 0.0,
        horizon_ms: horizon.as_millis(),
        events: Vec::new(),
    }
}

/// Generates one family's scenarios.
pub fn generate(family: Family, cfg: &GeneratorConfig) -> Vec<ScenarioDoc> {
    (0..cfg.scenarios_per_family)
        .map(|i| {
            let mut rng = scenario_rng(cfg, family, i);
            match family {
                Family::Cascade => cascade(cfg, family, i, &mut rng),
                Family::RollingMaintenance => rolling(cfg, family, i, &mut rng),
                Family::CorrelatedBlastRadius => blast_radius(cfg, family, i, &mut rng),
                Family::SurgeUnderCrunch => surge_under_crunch(cfg, family, i, &mut rng),
                Family::FlapStorm => flap_storm(cfg, family, i, &mut rng),
                Family::GrayAging => gray_aging(cfg, family, i, &mut rng),
            }
        })
        .collect()
}

/// Generates the full suite: every family, `scenarios_per_family` each,
/// family-major in [`Family::all`] order.
pub fn generate_suite(cfg: &GeneratorConfig) -> SuiteDoc {
    SuiteDoc {
        version: SuiteDoc::VERSION,
        seed: cfg.seed,
        scenarios: Family::all()
            .into_iter()
            .flat_map(|f| generate(f, cfg))
            .collect(),
    }
}

fn cascade(cfg: &GeneratorConfig, family: Family, index: usize, rng: &mut StdRng) -> ScenarioDoc {
    let mut d = doc(cfg, family, index, SimTime::from_secs(2400));
    let waves = rng.gen_range(2..=3u32);
    let mut t = rng.gen_range(120..=240u64);
    let mut all_victims: Vec<u32> = Vec::new();
    for _ in 0..waves {
        let width = rng.gen_range(1..=((cfg.nodes as usize) / 3).max(1));
        let fresh: Vec<u32> = pick_nodes(rng, cfg.nodes, width)
            .into_iter()
            .filter(|n| !all_victims.contains(n))
            .collect();
        if fresh.is_empty() {
            continue;
        }
        d.events.push(EventDoc {
            nodes: fresh.clone(),
            ..EventDoc::new(t * 1000, "kubelet_stop")
        });
        all_victims.extend(fresh);
        t += rng.gen_range(90..=240u64);
    }
    // Late restore of the whole hole.
    let restore = t + rng.gen_range(300..=600u64);
    all_victims.sort_unstable();
    d.events.push(EventDoc {
        nodes: all_victims,
        ..EventDoc::new(restore * 1000, "kubelet_start")
    });
    d
}

fn rolling(cfg: &GeneratorConfig, family: Family, index: usize, rng: &mut StdRng) -> ScenarioDoc {
    let group = rng.gen_range(1..=2u32).min(cfg.nodes);
    let dwell = rng.gen_range(90..=180u64);
    let step = dwell + rng.gen_range(60..=120u64);
    let mut t = rng.gen_range(120..=240u64);
    let mut events = Vec::new();
    let mut node = 0u32;
    while node < cfg.nodes {
        let batch: Vec<u32> = (node..(node + group).min(cfg.nodes)).collect();
        events.push(EventDoc {
            nodes: batch.clone(),
            ..EventDoc::new(t * 1000, "kubelet_stop")
        });
        events.push(EventDoc {
            nodes: batch,
            ..EventDoc::new((t + dwell) * 1000, "kubelet_start")
        });
        t += step;
        node += group;
    }
    let mut d = doc(
        cfg,
        family,
        index,
        SimTime::from_secs(t + 600), // cover the last restart + settling
    );
    d.events = events;
    d
}

fn blast_radius(
    cfg: &GeneratorConfig,
    family: Family,
    index: usize,
    rng: &mut StdRng,
) -> ScenarioDoc {
    let mut d = doc(cfg, family, index, SimTime::from_secs(2400));
    let zones = rng.gen_range(2..=4u32).min(cfg.nodes.max(2));
    let zone = rng.gen_range(0..zones);
    // Even scenarios stripe (zone/PDU), odd ones take contiguous racks
    // (top-of-rack switch).
    let (outage, restore) = if index % 2 == 0 {
        ("zone_outage", "zone_restore")
    } else {
        ("rack_outage", "rack_restore")
    };
    let t = rng.gen_range(180..=360u64);
    let heal = t + rng.gen_range(600..=900u64);
    d.events.push(EventDoc {
        zones,
        zone,
        ..EventDoc::new(t * 1000, outage)
    });
    // Sometimes a second, overlapping blast before the first heals.
    if rng.gen_bool(0.5) && zones > 2 {
        let second = (zone + 1) % zones;
        let t2 = t + rng.gen_range(120..=360u64);
        d.events.push(EventDoc {
            zones,
            zone: second,
            ..EventDoc::new(t2 * 1000, outage)
        });
        d.events.push(EventDoc {
            zones,
            zone: second,
            ..EventDoc::new((heal + 120) * 1000, restore)
        });
    }
    d.events.push(EventDoc {
        zones,
        zone,
        ..EventDoc::new(heal * 1000, restore)
    });
    d
}

fn surge_under_crunch(
    cfg: &GeneratorConfig,
    family: Family,
    index: usize,
    rng: &mut StdRng,
) -> ScenarioDoc {
    let mut d = doc(cfg, family, index, SimTime::from_secs(2400));
    // The crunch: lose 25–50 % of the nodes…
    let frac: f64 = rng.gen_range(0.25..=0.5);
    let width = ((cfg.nodes as f64) * frac).round() as usize;
    let victims = pick_nodes(rng, cfg.nodes, width.max(1));
    let t = rng.gen_range(180..=300u64);
    d.events.push(EventDoc {
        nodes: victims.clone(),
        ..EventDoc::new(t * 1000, "kubelet_stop")
    });
    // …then the surge lands while the hole is open.
    let surge_at = t + rng.gen_range(60..=240u64);
    d.events.push(EventDoc {
        app: rng.gen_range(0..cfg.apps.max(1)),
        demand_factor: rng.gen_range(1.2..=1.8),
        replica_factor: if rng.gen_bool(0.5) { 2.0 } else { 1.0 },
        ..EventDoc::new(surge_at * 1000, "demand_surge")
    });
    let heal = surge_at + rng.gen_range(600..=900u64);
    d.events.push(EventDoc {
        nodes: victims,
        ..EventDoc::new(heal * 1000, "kubelet_start")
    });
    d
}

fn flap_storm(
    cfg: &GeneratorConfig,
    family: Family,
    index: usize,
    rng: &mut StdRng,
) -> ScenarioDoc {
    let mut d = doc(cfg, family, index, SimTime::from_secs(3000));
    let groups = rng.gen_range(1..=2usize);
    for _ in 0..groups {
        let width = rng.gen_range(1..=((cfg.nodes as usize) / 4).max(1));
        let nodes = pick_nodes(rng, cfg.nodes, width);
        d.events.push(EventDoc {
            nodes,
            down_ms: rng.gen_range(60..=180u64) * 1000,
            up_ms: rng.gen_range(120..=300u64) * 1000,
            cycles: rng.gen_range(2..=4u32),
            jitter_ms: rng.gen_range(0..=30u64) * 1000,
            ..EventDoc::new(rng.gen_range(120..=480u64) * 1000, "flap")
        });
    }
    d
}

fn gray_aging(
    cfg: &GeneratorConfig,
    family: Family,
    index: usize,
    rng: &mut StdRng,
) -> ScenarioDoc {
    let mut d = doc(cfg, family, index, SimTime::from_secs(2700));
    let width = rng.gen_range(1..=((cfg.nodes as usize) / 2).max(1));
    let aging = pick_nodes(rng, cfg.nodes, width);
    let mut t = rng.gen_range(180..=300u64);
    let mut factor = 1.0f64;
    let steps = rng.gen_range(2..=3u32);
    for _ in 0..steps {
        factor *= rng.gen_range(0.6..=0.8);
        d.events.push(EventDoc {
            nodes: aging.clone(),
            // Two-decimal factors keep the JSON human-diffable.
            factor: (factor * 100.0).round() / 100.0,
            ..EventDoc::new(t * 1000, "capacity_degrade")
        });
        t += rng.gen_range(180..=360u64);
    }
    // The reboot that heals the aging.
    let heal = t + rng.gen_range(240..=480u64);
    d.events.push(EventDoc {
        nodes: aging,
        ..EventDoc::new(heal * 1000, "capacity_restore")
    });
    d
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::to_json;

    #[test]
    fn suites_are_deterministic_under_seed() {
        let cfg = GeneratorConfig::default();
        let a = generate_suite(&cfg);
        let b = generate_suite(&cfg);
        assert_eq!(a, b);
        assert_eq!(to_json(&a).unwrap(), to_json(&b).unwrap());
        // A different seed genuinely moves the suite.
        let c = generate_suite(&GeneratorConfig {
            seed: 43,
            ..cfg.clone()
        });
        assert_ne!(a, c);
    }

    #[test]
    fn every_generated_scenario_validates_and_compiles() {
        for seed in [1u64, 7, 42] {
            let cfg = GeneratorConfig {
                seed,
                scenarios_per_family: 4,
                ..GeneratorConfig::default()
            };
            let suite = generate_suite(&cfg);
            assert_eq!(suite.scenarios.len(), 6 * 4);
            suite.validate().expect("generated suite validates");
            for s in &suite.scenarios {
                s.compile().expect("generated scenario compiles");
                assert!(s.first_disruption().is_some(), "{} never disrupts", s.name);
                assert!(
                    s.events.iter().all(|e| e.at_ms < s.horizon_ms),
                    "{}: event beyond horizon",
                    s.name
                );
            }
        }
    }

    #[test]
    fn family_slugs_cover_all_scenarios() {
        let suite = generate_suite(&GeneratorConfig::default());
        for f in Family::all() {
            assert_eq!(
                suite
                    .scenarios
                    .iter()
                    .filter(|s| s.family == f.slug())
                    .count(),
                5,
                "{}",
                f.slug()
            );
        }
    }

    #[test]
    fn scenario_streams_are_independent_of_sibling_count() {
        // Scenario i's bytes depend only on (seed, family, i): generating
        // more scenarios per family extends the suite without rewriting
        // the prefix (what makes saved suites diffable across growth).
        let small = generate(Family::Cascade, &GeneratorConfig::default());
        let big = generate(
            Family::Cascade,
            &GeneratorConfig {
                scenarios_per_family: 8,
                ..GeneratorConfig::default()
            },
        );
        assert_eq!(&big[..small.len()], &small[..]);
    }
}
