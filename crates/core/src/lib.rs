//! Phoenix: cooperative graceful degradation for containerized clouds.
//!
//! This crate is the paper's primary contribution — the automated resilience
//! management layer that converts application-level **criticality tags** and
//! operator objectives into capacity reallocation decisions during
//! large-scale failures (*diagonal scaling*, §3–§4 of the ASPLOS'25 paper).
//!
//! The pipeline mirrors Figure 3:
//!
//! 1. [`planner`] — the **Priority Estimator** orders each application's
//!    microservices by criticality and dependency structure (Algorithm 1);
//! 2. [`ranking`] — **Global Ranking** merges the per-app orders under an
//!    [`objectives::OperatorObjective`] (max-min fairness or revenue) into
//!    one cluster-wide activation list;
//! 3. the **Scheduler** ([`phoenix_cluster::packing`]) maps that list onto
//!    healthy servers with best-fit → repack → delete-lower-ranks;
//! 4. [`actions`] — the **Agent**'s task list (delete, migrate, restart) is
//!    derived by diffing live and target states.
//!
//! [`controller::PhoenixController`] ties the stages together, and
//! [`policies`] exposes Phoenix plus every baseline from the evaluation
//! (`Fair`, `Priority`, `Default`, `LPFair`, `LPCost`) behind one
//! [`policies::ResiliencePolicy`] trait.
//!
//! # Examples
//!
//! ```
//! use phoenix_core::spec::{AppSpecBuilder, Workload};
//! use phoenix_core::tags::Criticality;
//! use phoenix_core::controller::{PhoenixConfig, PhoenixController};
//! use phoenix_core::objectives::ObjectiveKind;
//! use phoenix_cluster::{ClusterState, Resources};
//!
//! // A two-service app: critical frontend calling an optional chat service.
//! let mut b = AppSpecBuilder::new("docs");
//! let fe = b.add_service("frontend", Resources::cpu(2.0), Some(Criticality::C1), 1);
//! let chat = b.add_service("chat", Resources::cpu(1.0), Some(Criticality::new(5)), 1);
//! b.add_dependency(fe, chat);
//! let workload = Workload::new(vec![b.build()?]);
//!
//! let state = ClusterState::homogeneous(2, Resources::cpu(2.0));
//! let controller = PhoenixController::new(
//!     workload,
//!     PhoenixConfig::with_objective(ObjectiveKind::Fairness),
//! );
//! let plan = controller.plan(&state);
//! // Only 4 CPUs are healthy: the C1 frontend is activated, chat is shed.
//! assert!(plan.target.pod_count() >= 1);
//! # Ok::<(), phoenix_core::spec::SpecError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod actions;
pub mod audit;
pub mod controller;
pub mod dynamic;
pub mod objectives;
pub mod persist;
pub mod planner;
pub mod policies;
pub mod profiling;
pub mod ranking;
pub mod replan;
pub mod spec;
pub mod stateful;
pub mod stats;
pub mod tags;
pub mod waterfill;
pub mod weaver;

pub use phoenix_cluster::{ClusterState, NodeId, PodKey, Resources};
