//! Figures 10–16 (Appendix F.2): the full sweep of criticality-tagging
//! schemes × resource models on the AdaptLab cluster.
//!
//! Eight configurations: {Service-Level, Freq-Based} × {P50, P90} ×
//! {CPM, LongTailed}. For each, prints availability / revenue / fairness
//! at three failure levels. Consistently, Phoenix should lead the
//! baselines in every cell (the paper's summary of the appendix).

use phoenix_adaptlab::alibaba::AlibabaConfig;
use phoenix_adaptlab::resources::ResourceModel;
use phoenix_adaptlab::runner::{failure_sweep, point, SweepConfig};
use phoenix_adaptlab::scenario::EnvConfig;
use phoenix_adaptlab::tagging::TaggingScheme;
use phoenix_bench::{arg, f3, init_threads, Table};
use phoenix_core::policies::standard_roster;

fn main() {
    init_threads();
    let nodes: usize = arg("nodes", 1_000);
    let trials: u32 = arg("trials", 2);
    let fracs = vec![0.1, 0.5, 0.9];

    let schemes = [
        TaggingScheme::ServiceLevel { percentile: 0.5 },
        TaggingScheme::ServiceLevel { percentile: 0.9 },
        TaggingScheme::FrequencyBased { percentile: 0.5 },
        TaggingScheme::FrequencyBased { percentile: 0.9 },
    ];
    let models = [ResourceModel::CallsPerMinute, ResourceModel::LongTailed];

    for model in models {
        for scheme in schemes {
            let env = EnvConfig {
                nodes,
                node_capacity: 64.0,
                target_utilization: 0.75,
                resource_model: model,
                tagging: scheme,
                alibaba: AlibabaConfig {
                    max_services: (nodes * 3).min(3000),
                    ..AlibabaConfig::default()
                },
                seed: 23,
            };
            let roster = standard_roster();
            let points = failure_sweep(
                &env,
                &SweepConfig {
                    failure_fracs: fracs.clone(),
                    trials,
                    ..SweepConfig::default()
                },
                &roster,
            );
            let mut t = Table::new(["failed%", "scheme", "availability", "revenue", "fair-dev"]);
            for &frac in &fracs {
                for p in &roster {
                    let m = point(&points, p.name(), frac).unwrap().metrics;
                    t.row([
                        format!("{:.0}", frac * 100.0),
                        p.name().to_string(),
                        f3(m.availability),
                        f3(m.revenue),
                        f3(m.fairness_pos + m.fairness_neg),
                    ]);
                }
            }
            t.print(&format!(
                "Figs 10–16: {} tagging × {} resources ({nodes} nodes)",
                scheme.label(),
                model.label()
            ));
        }
    }
}
