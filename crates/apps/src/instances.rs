//! The five-instance CloudLab workload (Table 4, Fig. 9).
//!
//! Three Overleaf instances and two HotelReservation instances share a
//! 200-CPU cluster (25 × d710 nodes, 8 cores each). Scales and prices are
//! calibrated so that — as Appendix F.1 reports — all applications together
//! need ≈70 % of the cluster, the C1:rest split is ≈60:40, and all C1
//! microservices fit in ≈42 % of capacity (the breaking point used in the
//! Fig. 5 experiments).

use phoenix_cluster::Resources;
use phoenix_core::spec::Workload;

use crate::catalog::AppModel;
use crate::hotel::{hotel, HotelVariant};
use crate::overleaf::{overleaf, OverleafVariant};

/// Number of CloudLab worker nodes.
pub const NODES: usize = 25;
/// Cores per d710 node.
pub const NODE_CPUS: f64 = 8.0;

/// Builds the five instances with their Table-4 criticality goals.
///
/// HotelReservation instances come pre-patched (the §5 error-handling
/// fixes), as deployed in the evaluation.
pub fn cloudlab_models() -> Vec<AppModel> {
    vec![
        overleaf("overleaf0", OverleafVariant::Edits, 1.0),
        overleaf("overleaf1", OverleafVariant::Versions, 0.9),
        overleaf("overleaf2", OverleafVariant::Downloads, 1.1),
        hotel("hr0", HotelVariant::Search, 1.0).patched(),
        hotel("hr1", HotelVariant::Reserve, 1.0).patched(),
    ]
}

/// Per-unit-resource prices for the cost objective (operator-side input).
pub const PRICES: [f64; 5] = [3.0, 1.5, 1.0, 2.5, 2.0];

/// The planner-facing workload (specs with prices applied).
pub fn cloudlab_workload() -> (Workload, Vec<AppModel>) {
    let mut models = cloudlab_models();
    for (model, &price) in models.iter_mut().zip(&PRICES) {
        // Rebuild spec pricing without touching behaviour.
        let mut spec = model.spec.clone();
        spec = {
            // AppSpec is immutable; rebuild through the builder.
            let mut b = phoenix_core::spec::AppSpecBuilder::new(spec.name());
            for (i, s) in spec.services().iter().enumerate() {
                let _ = i;
                b.add_service(s.name.clone(), s.demand, s.criticality, s.replicas);
            }
            if let Some(g) = spec.dependency() {
                for (f, t) in g.edges() {
                    b.add_dependency(
                        phoenix_core::spec::ServiceId::new(f.index() as u32),
                        phoenix_core::spec::ServiceId::new(t.index() as u32),
                    );
                }
            }
            b.price_per_unit(price);
            b.build().expect("rebuilt spec is valid")
        };
        model.spec = spec;
    }
    let workload = Workload::new(models.iter().map(|m| m.spec.clone()).collect());
    (workload, models)
}

/// The 25-node, 200-CPU cluster.
pub fn cloudlab_capacities() -> Vec<Resources> {
    vec![Resources::cpu(NODE_CPUS); NODES]
}

#[cfg(test)]
mod tests {
    use super::*;
    use phoenix_core::tags::Criticality;

    #[test]
    fn aggregate_sizing_matches_appendix_f1() {
        let (w, models) = cloudlab_workload();
        assert_eq!(w.app_count(), 5);
        let cluster: f64 = NODES as f64 * NODE_CPUS;
        let total = w.total_demand().cpu;
        // All apps ≈70 % of cluster capacity.
        let frac = total / cluster;
        assert!((0.60..=0.80).contains(&frac), "total demand {frac}");
        // C1 ≈ 60:40 against the rest and ≈40 % of cluster.
        let c1: f64 = models
            .iter()
            .map(|m| m.spec.demand_at_criticality(Criticality::C1).cpu)
            .sum();
        let c1_share = c1 / total;
        assert!((0.50..=0.70).contains(&c1_share), "C1 share {c1_share}");
        let c1_cluster = c1 / cluster;
        assert!(
            (0.35..=0.50).contains(&c1_cluster),
            "C1 vs cluster {c1_cluster}"
        );
    }

    #[test]
    fn prices_applied_in_order() {
        let (w, _) = cloudlab_workload();
        for (i, (_, app)) in w.apps().enumerate() {
            assert_eq!(app.price_per_unit(), PRICES[i], "{}", app.name());
        }
    }

    #[test]
    fn specs_keep_dependency_graphs_and_goals() {
        let (w, models) = cloudlab_workload();
        for (_, app) in w.apps() {
            assert!(app.dependency().is_some());
        }
        assert_eq!(models[0].critical().name, "edits");
        assert_eq!(models[1].critical().name, "versioning");
        assert_eq!(models[2].critical().name, "downloads");
        assert_eq!(models[3].critical().name, "search");
        assert_eq!(models[4].critical().name, "reserve");
        // HR instances are patched.
        assert!(models[3].crash_proof && models[4].crash_proof);
    }

    #[test]
    fn every_pod_fits_a_node() {
        let (w, _) = cloudlab_workload();
        for (_, app) in w.apps() {
            for s in app.services() {
                assert!(
                    s.demand.cpu <= NODE_CPUS,
                    "{} {} too big for a node",
                    app.name(),
                    s.name
                );
            }
        }
    }
}
