//! Cluster-state substrate: nodes, pods, capacity accounting, failure
//! injection, and the criticality-aware bin-packing scheduler of the Phoenix
//! paper (Algorithm 2).
//!
//! The reference implementation tracks cluster state in Python dictionaries
//! and a `SortedList`; this crate provides the same capabilities natively:
//!
//! * [`Resources`] — two-dimensional (CPU, memory) capacity vectors,
//! * [`ClusterState`] — node/pod assignment bookkeeping with failure
//!   injection and utilization metrics,
//! * [`SortedNodes`] — an ordered multiset over node remaining capacity
//!   (the `SortedContainers` stand-in) powering O(log n) best-fit queries,
//! * [`packing`] — the three-pronged packing heuristic: best-fit →
//!   repack-by-migration → delete-lower-ranks, with a sharded driver
//!   ([`packing::pack_sharded`]) that fans fit scans over contiguous
//!   node shards ([`shard`]) with byte-identical output,
//! * [`default_sched`] — the vanilla Kubernetes scheduler emulation
//!   (spread/least-allocated, no criticality awareness) used as the
//!   `Default` baseline.
//!
//! # Examples
//!
//! ```
//! use phoenix_cluster::{ClusterState, PodKey, Resources};
//!
//! // Four 8-CPU nodes; place one pod, fail its node, watch it evict.
//! let mut state = ClusterState::homogeneous(4, Resources::cpu(8.0));
//! let pod = PodKey::new(0, 0, 0);
//! state.assign(pod, Resources::cpu(3.0), state.node_ids()[0])?;
//! assert_eq!(state.pod_count(), 1);
//! let evicted = state.fail_node(state.node_ids()[0]);
//! assert_eq!(evicted.len(), 1);
//! assert_eq!(state.pod_count(), 0);
//! # Ok::<(), phoenix_cluster::ClusterError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod default_sched;
mod error;
pub mod failure;
pub mod fxhash;
pub mod packing;
mod resources;
pub mod shard;
mod sorted;
mod state;

pub use error::ClusterError;
pub use fxhash::{FxBuildHasher, FxHashMap, FxHashSet};
pub use resources::Resources;
pub use shard::{SeqShardRunner, ShardLayout, ShardProposals, ShardRunner};
pub use sorted::{OrderedF64, SortedNodes};
pub use state::{ClusterState, NodeId, PodKey, Snapshot};
