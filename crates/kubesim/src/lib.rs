//! A discrete-event simulated Kubernetes control plane — the stand-in for
//! the paper's CloudLab testbed.
//!
//! The CloudLab experiments (§6.1) measure *when* things happen: kubelets
//! stop at `t1`, the Phoenix agent detects the failure ≈100 s later
//! (kubelet heartbeats + monitor grace), plans almost instantly, issues
//! deletions/migrations/restarts whose pod-level latencies dominate, and
//! reaches the target state in under 4 minutes. None of that needs real
//! packets — it needs a faithful event-driven model of:
//!
//! * kubelet heartbeats and the node-monitor grace period,
//! * the Phoenix agent's 15-second cluster monitor loop,
//! * pod lifecycle latencies (graceful deletion, image pull + start,
//!   migration = start-then-reroute-then-delete),
//! * replanning when capacity returns.
//!
//! [`run::simulate`] executes a [`scenario::Scenario`] against any
//! [`phoenix_core::policies::ResiliencePolicy`] and produces a
//! [`run::SimTrace`]: per-second serving status of every pod plus the
//! `t1…t5` milestone markers that Fig. 6 annotates.
//!
//! Beyond the paper's stop/start script, scenarios can degrade node
//! capacity gracefully ([`scenario::ScenarioKind::CapacityDegrade`]),
//! flap node groups with seeded jitter, surge application demand
//! mid-run, and take out whole zones or racks — the vocabulary the
//! `phoenix-scenarios` crate generates entire campaign suites from.
//!
//! # Examples
//!
//! ```
//! use phoenix_core::policies::PhoenixPolicy;
//! use phoenix_core::spec::{AppSpecBuilder, Workload};
//! use phoenix_core::tags::Criticality;
//! use phoenix_cluster::Resources;
//! use phoenix_kubesim::scenario::Scenario;
//! use phoenix_kubesim::run::{simulate, SimConfig};
//! use phoenix_kubesim::time::SimTime;
//!
//! let mut b = AppSpecBuilder::new("web");
//! b.add_service("fe", Resources::cpu(2.0), Some(Criticality::C1), 1);
//! b.add_service("chat", Resources::cpu(2.0), Some(Criticality::C5), 1);
//! let workload = Workload::new(vec![b.build()?]);
//!
//! let mut scenario = Scenario::new(4, Resources::cpu(2.0));
//! scenario.kubelet_stop_at(SimTime::from_secs(300), [0, 1]);
//! scenario.kubelet_start_at(SimTime::from_secs(900), [0, 1]);
//!
//! let trace = simulate(
//!     &workload,
//!     &PhoenixPolicy::fair(),
//!     &scenario,
//!     &SimConfig::default(),
//!     SimTime::from_secs(1200),
//! );
//! assert!(trace.milestones.iter().any(|m| m.label() == "recovered"));
//! # Ok::<(), phoenix_core::spec::SpecError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod events;
pub mod latency;
pub mod rto;
pub mod run;
pub mod scenario;
pub mod time;
