//! The `Priority` baseline: criticality tags without operator quotas.
//!
//! Applications expose tags and each app's activation order respects them,
//! but the operator enforces no inter-app coordination at all: apps are
//! served one at a time (in object order), each activating its full
//! prioritized chain before the next app gets anything. A handful of
//! early/large applications soak up the capacity and the rest starve —
//! the failure mode Fig. 7a shows ("a few applications with many
//! high-criticality microservices using most of the resources").

use phoenix_cluster::packing::{pack, PackingConfig, PlannedPod};
use phoenix_cluster::ClusterState;

use crate::planner::{app_rank, Traversal};
use crate::policies::{PolicyPlan, ResiliencePolicy};
use crate::spec::Workload;

/// Per-app criticality chains, apps served sequentially, no quotas.
#[derive(Debug, Clone, Default)]
pub struct PriorityPolicy {
    packing: PackingConfig,
}

impl PriorityPolicy {
    /// Overrides packing knobs.
    pub fn packing_config(mut self, packing: PackingConfig) -> PriorityPolicy {
        self.packing = packing;
        self
    }
}

impl ResiliencePolicy for PriorityPolicy {
    fn name(&self) -> &'static str {
        "Priority"
    }

    fn plan(&self, workload: &Workload, state: &ClusterState) -> PolicyPlan {
        let t0 = std::time::Instant::now();
        // Apps in object order; each activates its whole criticality chain
        // until the aggregate capacity is spoken for.
        let mut remaining = state.healthy_capacity().scalar();
        let mut plan: Vec<PlannedPod> = Vec::new();
        'apps: for (ai, app) in workload.apps() {
            for service in app_rank(app, Traversal::CriticalityGuidedDfs) {
                let svc = app.service(service);
                let demand = svc.total_demand().scalar();
                if demand > remaining + 1e-9 {
                    // This app's chain stops; capacity is effectively gone
                    // for everyone behind it too (no quota, no skipping).
                    break 'apps;
                }
                remaining -= demand;
                for key in workload.pod_keys(ai, service) {
                    plan.push(PlannedPod::new(key, svc.demand));
                }
            }
        }
        let mut target = state.clone();
        pack(&mut target, &plan, &self.packing);
        PolicyPlan {
            target,
            planning_time: t0.elapsed(),
            modes: crate::spec::ModeAssignment::empty(),
            notes: String::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::AppSpecBuilder;
    use crate::tags::Criticality;
    use phoenix_cluster::Resources;

    #[test]
    fn tag_heavy_app_monopolizes_capacity() {
        // App0: five C1 services; app1: one C1 + one C2.
        let mut b0 = AppSpecBuilder::new("greedy");
        for i in 0..5 {
            b0.add_service(
                format!("s{i}"),
                Resources::cpu(1.0),
                Some(Criticality::C1),
                1,
            );
        }
        let mut b1 = AppSpecBuilder::new("modest");
        b1.add_service("fe", Resources::cpu(1.0), Some(Criticality::C1), 1);
        b1.add_service("aux", Resources::cpu(1.0), Some(Criticality::C2), 1);
        let w = Workload::new(vec![b0.build().unwrap(), b1.build().unwrap()]);

        // 6 CPUs: the greedy app's whole chain (5 C1s) goes first, then the
        // modest app's C1 — its C2 no longer fits.
        let state = ClusterState::homogeneous(6, Resources::cpu(1.0));
        let plan = PriorityPolicy::default().plan(&w, &state);
        let greedy_pods = plan
            .target
            .assignments()
            .filter(|(p, _, _)| p.app == 0)
            .count();
        assert_eq!(greedy_pods, 5);
        // With only 5 CPUs the greedy app takes everything: no quota.
        let state5 = ClusterState::homogeneous(5, Resources::cpu(1.0));
        let plan5 = PriorityPolicy::default().plan(&w, &state5);
        let modest_pods = plan5
            .target
            .assignments()
            .filter(|(p, _, _)| p.app == 1)
            .count();
        assert_eq!(modest_pods, 0, "no per-app quota protects the modest app");
    }
}
