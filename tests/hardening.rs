//! Integration tests for the §7-roadmap hardening features, exercised
//! through the public facade:
//!
//! * stateful-workload awareness — pins survive an end-to-end failure /
//!   recovery cycle alongside Phoenix's normal diagonal scaling;
//! * adversarial tag auditing — the audit + fairness guard work on the
//!   CloudLab workload, not just toy specs;
//! * log-based criticality inference feeding the planner — tags inferred
//!   from sampled traces produce a plan whose critical coverage matches
//!   ground-truth tags;
//! * degradation-mode composition — diagonal scaling + shedding beats
//!   either alone on the Fig.-5 scenario.

use phoenix::adaptlab::alibaba::{generate, AlibabaConfig};
use phoenix::adaptlab::inference::{infer_tags, synthesize_log, InferenceConfig, LogConfig};
use phoenix::adaptlab::metrics::service_active;
use phoenix::apps::instances::{cloudlab_capacities, cloudlab_workload};
use phoenix::apps::shedding::{shed, summarize, OverloadScenario, QosPolicy, SheddingPolicy};
use phoenix::cluster::{ClusterState, Resources};
use phoenix::core::audit::{audit_workload, blast_radius, AuditConfig};
use phoenix::core::controller::{PhoenixConfig, PhoenixController};
use phoenix::core::objectives::ObjectiveKind;
use phoenix::core::policies::{PhoenixPolicy, ResiliencePolicy};
use phoenix::core::spec::{AppId, AppSpecBuilder, ServiceId, Workload};
use phoenix::core::stateful::{plan_pinned, verify_pins, StatefulMarks};
use phoenix::core::tags::Criticality;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A stateful mark set over the CloudLab workload (pretend each app's
/// heaviest service is its database) survives a failure/recovery cycle
/// with zero pin violations and no loss of the stateless plan's quality.
#[test]
fn stateful_pins_hold_through_failure_and_recovery() {
    let (workload, _) = cloudlab_workload();
    // Mark the largest service of each app as stateful.
    let mut marks = StatefulMarks::new();
    for (app, spec) in workload.apps() {
        let heaviest = spec
            .service_ids()
            .max_by(|&a, &b| {
                spec.service(a)
                    .total_demand()
                    .scalar()
                    .partial_cmp(&spec.service(b).total_demand().scalar())
                    .unwrap()
            })
            .unwrap();
        marks.mark(app, heaviest);
    }

    let mut live = ClusterState::new(cloudlab_capacities());
    let config = PhoenixConfig::default();
    let fresh = plan_pinned(&workload, &marks, &live, &config);
    verify_pins(&fresh.actions, &marks).unwrap();
    assert!(fresh.stranded.is_empty(), "full cluster strands nothing");
    for (pod, node, demand) in fresh.target.assignments() {
        live.assign(pod, demand, node).unwrap();
    }
    let before = live.pod_count();

    // Fail 10 of 25 nodes, replan, recover, replan again.
    let mut rng = StdRng::seed_from_u64(7);
    phoenix::cluster::failure::fail_fraction(&mut live, 0.4, &mut rng);
    let crunch = plan_pinned(&workload, &marks, &live, &config);
    verify_pins(&crunch.actions, &marks).unwrap();
    crunch.target.check_invariants().unwrap();
    assert!(crunch.target.pod_count() < before, "crunch must shed pods");

    // Apply the crunch plan, then restore and replan to full strength.
    let mut degraded = crunch.target.clone();
    phoenix::cluster::failure::restore_all(&mut degraded);
    let recovered = plan_pinned(&workload, &marks, &degraded, &config);
    verify_pins(&recovered.actions, &marks).unwrap();
    assert_eq!(
        recovered.target.pod_count(),
        before,
        "full capacity restores the full workload"
    );
}

/// The audit passes the (honestly-tagged) CloudLab workload and the
/// fairness objective bounds an inflating CloudLab tenant.
#[test]
fn cloudlab_workload_audits_clean_and_fairness_guards_it() {
    let (workload, _) = cloudlab_workload();
    let report = audit_workload(&workload, &AuditConfig::default());
    assert!(
        report.passed(),
        "CloudLab tags are honest: {:?}",
        report.suspicious().map(|a| &a.name).collect::<Vec<_>>()
    );

    let mut state = ClusterState::new(cloudlab_capacities());
    let mut rng = StdRng::seed_from_u64(2024);
    phoenix::cluster::failure::fail_fraction(&mut state, 0.56, &mut rng);
    let br = blast_radius(
        &workload,
        AppId::new(1),
        &state,
        &PhoenixConfig::with_objective(ObjectiveKind::Fairness),
    );
    // Under fairness the inflator cannot push any honest tenant's truly
    // critical coverage down.
    assert!(br.worst_victim().is_none(), "{:?}", br.worst_victim());
}

/// Tags inferred from a 5 % sampled call log drive the planner to the
/// same critical coverage as ground-truth frequency-based tags.
#[test]
fn inferred_tags_plan_as_well_as_ground_truth() {
    let mut rng = StdRng::seed_from_u64(5);
    let apps = generate(
        &mut rng,
        &AlibabaConfig {
            apps: 3,
            max_services: 120,
            max_requests: 80_000.0,
            ..AlibabaConfig::default()
        },
    );

    // Build one Workload per tag source over the same trace apps.
    let build = |tag_sets: &[Vec<Criticality>]| {
        let mut specs = Vec::new();
        for (app, tags) in apps.iter().zip(tag_sets) {
            let mut b = AppSpecBuilder::new(app.name.clone());
            for (i, &tag) in tags.iter().enumerate() {
                b.add_service(format!("ms{i}"), Resources::cpu(1.0), Some(tag), 1);
            }
            specs.push(b.build().unwrap());
        }
        Workload::new(specs)
    };
    let truth_tags: Vec<Vec<Criticality>> = apps
        .iter()
        .map(|a| {
            phoenix::adaptlab::tagging::assign(
                phoenix::adaptlab::tagging::TaggingScheme::FrequencyBased { percentile: 0.9 },
                a,
                &mut rng,
            )
        })
        .collect();
    let inferred_tags: Vec<Vec<Criticality>> = apps
        .iter()
        .map(|a| {
            let log = synthesize_log(a, &LogConfig { sample_rate: 0.05 }, &mut rng);
            infer_tags(&log, &InferenceConfig::default())
        })
        .collect();

    // Plan both workloads on a half-capacity cluster.
    let total: f64 = apps.iter().map(|a| a.graph.node_count() as f64).sum();
    let state = ClusterState::homogeneous((total / 2.0 / 8.0).ceil() as usize, Resources::cpu(8.0));
    let coverage = |workload: &Workload| {
        let controller = PhoenixController::new(workload.clone(), PhoenixConfig::default());
        let plan = controller.plan(&state);
        // Fraction of request weight served, judged by the trace templates.
        let mut served = 0.0;
        let mut offered = 0.0;
        for (ai, app) in apps.iter().enumerate() {
            for t in &app.templates {
                offered += t.weight;
                let up = t.services.iter().all(|s| {
                    plan.target
                        .node_of(phoenix::cluster::PodKey::new(
                            ai as u32,
                            s.index() as u32,
                            0,
                        ))
                        .is_some()
                });
                if up {
                    served += t.weight;
                }
            }
        }
        served / offered
    };
    let truth_cov = coverage(&build(&truth_tags));
    let inferred_cov = coverage(&build(&inferred_tags));
    assert!(
        inferred_cov >= truth_cov - 0.1,
        "inferred {inferred_cov} far below truth {truth_cov}"
    );
    assert!(truth_cov > 0.5, "sanity: ground truth serves most requests");
}

/// Fig.-5 failure + flash crowd: diagonal + priority shedding serves more
/// utility than either mode alone.
#[test]
fn combined_degradation_beats_single_modes() {
    let (workload, models) = cloudlab_workload();
    let mut baseline = ClusterState::new(cloudlab_capacities());
    baseline = PhoenixPolicy::fair().plan(&workload, &baseline).target;
    let mut failed = baseline.clone();
    let mut rng = StdRng::seed_from_u64(2024);
    phoenix::cluster::failure::fail_fraction(&mut failed, 0.56, &mut rng);
    let replanned = PhoenixPolicy::fair().plan(&workload, &failed).target;

    let utility = |state: &ClusterState, policy: SheddingPolicy| -> f64 {
        models
            .iter()
            .enumerate()
            .map(|(i, model)| {
                let spec = workload.app(AppId::new(i as u32));
                let total = spec.total_demand().scalar();
                let active: f64 = spec
                    .service_ids()
                    .filter(|s| service_active(&workload, state, i, s.index()))
                    .map(|s| spec.service(s).total_demand().scalar())
                    .sum();
                let nominal: f64 = model.requests.iter().map(|r| r.rate_rps).sum();
                let scenario = OverloadScenario {
                    load_multiplier: 2.0,
                    capacity_rps: nominal * active / total,
                };
                let up = |s: ServiceId| service_active(&workload, state, i, s.index());
                summarize(model, &shed(model, up, &scenario, policy, QosPolicy::Full)).utility_rate
            })
            .sum()
    };

    let neither = utility(&failed, SheddingPolicy::None);
    let shed_only = utility(&failed, SheddingPolicy::PriorityAware);
    let diagonal_only = utility(&replanned, SheddingPolicy::None);
    let combined = utility(&replanned, SheddingPolicy::PriorityAware);
    assert!(
        combined > shed_only && combined > diagonal_only && combined > neither,
        "combined {combined} vs shed {shed_only}, diagonal {diagonal_only}, neither {neither}"
    );
}
