//! Random-DAG generators.
//!
//! AdaptLab synthesizes microservice dependency graphs that match the shape
//! statistics the paper reports for the Alibaba 2021 traces: shallow layered
//! DAGs with a handful of entry services, strong fan-out hubs, and a large
//! majority (74–82 %) of *single-upstream* stub services. The generators
//! here produce those shapes; calibration to the trace statistics happens in
//! `phoenix-adaptlab`.

use rand::Rng;

use crate::{DiGraph, NodeId};

/// Configuration for [`attachment_dag`].
#[derive(Debug, Clone, PartialEq)]
pub struct AttachmentConfig {
    /// Total number of nodes (≥ 1).
    pub nodes: usize,
    /// Number of entry (source) nodes grown first (≥ 1, ≤ `nodes`).
    pub entry_nodes: usize,
    /// Probability that a new node attaches to more than one parent.
    ///
    /// The complement is the *single-upstream* fraction the paper measures
    /// (74 % for the top-4 Alibaba apps, 82 % across all 18).
    pub multi_parent_prob: f64,
    /// Upper bound on extra parents for multi-parent nodes.
    pub max_extra_parents: usize,
    /// Preferential-attachment strength: 0.0 picks parents uniformly, 1.0
    /// always prefers high-out-degree hubs.
    pub hub_bias: f64,
}

impl Default for AttachmentConfig {
    fn default() -> AttachmentConfig {
        AttachmentConfig {
            nodes: 50,
            entry_nodes: 2,
            multi_parent_prob: 0.2,
            max_extra_parents: 3,
            hub_bias: 0.6,
        }
    }
}

/// Grows a DAG by preferential attachment.
///
/// Nodes are added one at a time; each new node picks one parent among the
/// existing nodes (biased towards hubs by `hub_bias`), and with probability
/// `multi_parent_prob` up to `max_extra_parents` additional parents. Because
/// edges always point from an older node to a newer one, the result is a DAG
/// and node ids are a valid topological order. Payloads are the node
/// indices.
///
/// # Panics
///
/// Panics if `nodes == 0` or `entry_nodes == 0` or `entry_nodes > nodes`.
pub fn attachment_dag<R: Rng + ?Sized>(rng: &mut R, cfg: &AttachmentConfig) -> DiGraph<usize> {
    assert!(cfg.nodes >= 1, "nodes must be >= 1");
    assert!(
        cfg.entry_nodes >= 1 && cfg.entry_nodes <= cfg.nodes,
        "entry_nodes must be in 1..=nodes"
    );
    let mut g = DiGraph::with_capacity(cfg.nodes);
    for i in 0..cfg.nodes.min(cfg.entry_nodes) {
        g.add_node(i);
    }
    for i in cfg.entry_nodes..cfg.nodes {
        let id = g.add_node(i);
        let parent = pick_parent(rng, &g, id, cfg.hub_bias);
        let _ = g.add_edge(parent, id);
        if rng.gen_bool(cfg.multi_parent_prob) && cfg.max_extra_parents > 0 {
            let extra = rng.gen_range(1..=cfg.max_extra_parents);
            for _ in 0..extra {
                let p = pick_parent(rng, &g, id, cfg.hub_bias);
                let _ = g.add_edge(p, id);
            }
        }
    }
    g
}

fn pick_parent<R: Rng + ?Sized>(
    rng: &mut R,
    g: &DiGraph<usize>,
    new_node: NodeId,
    hub_bias: f64,
) -> NodeId {
    let candidates = new_node.index();
    debug_assert!(candidates > 0);
    if rng.gen_bool(hub_bias.clamp(0.0, 1.0)) {
        // Preferential: weight each candidate by out_degree + 1.
        let total: usize = (0..candidates)
            .map(|i| g.out_degree(NodeId::from_index(i)) + 1)
            .sum();
        let mut ticket = rng.gen_range(0..total);
        for i in 0..candidates {
            let w = g.out_degree(NodeId::from_index(i)) + 1;
            if ticket < w {
                return NodeId::from_index(i);
            }
            ticket -= w;
        }
        NodeId::from_index(candidates - 1)
    } else {
        NodeId::from_index(rng.gen_range(0..candidates))
    }
}

/// Configuration for [`layered_dag`].
#[derive(Debug, Clone, PartialEq)]
pub struct LayeredConfig {
    /// Width of each layer, front (entry) to back (leaves). All ≥ 1.
    pub layer_widths: Vec<usize>,
    /// Probability of an edge between a node and each node of the next layer.
    pub edge_prob: f64,
    /// Probability of a skip edge to the layer after next.
    pub skip_prob: f64,
}

impl Default for LayeredConfig {
    fn default() -> LayeredConfig {
        LayeredConfig {
            layer_widths: vec![2, 4, 6, 4],
            edge_prob: 0.4,
            skip_prob: 0.05,
        }
    }
}

/// Builds a layered DAG: microservice tiers (frontend → mid → backend).
///
/// Every non-entry node is guaranteed at least one parent in an earlier
/// layer, so the entry layer reaches the entire graph. Payloads are
/// `(layer, index_in_layer)`.
///
/// # Panics
///
/// Panics if `layer_widths` is empty or contains a zero width.
pub fn layered_dag<R: Rng + ?Sized>(rng: &mut R, cfg: &LayeredConfig) -> DiGraph<(usize, usize)> {
    assert!(!cfg.layer_widths.is_empty(), "need at least one layer");
    assert!(
        cfg.layer_widths.iter().all(|&w| w > 0),
        "layer widths must be positive"
    );
    let mut g = DiGraph::new();
    let mut layers: Vec<Vec<NodeId>> = Vec::with_capacity(cfg.layer_widths.len());
    for (li, &w) in cfg.layer_widths.iter().enumerate() {
        let layer: Vec<NodeId> = (0..w).map(|i| g.add_node((li, i))).collect();
        layers.push(layer);
    }
    for li in 1..layers.len() {
        for &v in &layers[li] {
            let mut has_parent = false;
            for &u in &layers[li - 1] {
                if rng.gen_bool(cfg.edge_prob) {
                    let _ = g.add_edge(u, v);
                    has_parent = true;
                }
            }
            if li >= 2 {
                for &u in &layers[li - 2] {
                    if rng.gen_bool(cfg.skip_prob) {
                        let _ = g.add_edge(u, v);
                        has_parent = true;
                    }
                }
            }
            if !has_parent {
                let u = layers[li - 1][rng.gen_range(0..layers[li - 1].len())];
                let _ = g.add_edge(u, v);
            }
        }
    }
    g
}

/// Uniform random tree with `n` nodes rooted at node 0; payloads are indices.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn random_tree<R: Rng + ?Sized>(rng: &mut R, n: usize) -> DiGraph<usize> {
    assert!(n >= 1, "a tree needs at least one node");
    let mut g = DiGraph::with_capacity(n);
    g.add_node(0);
    for i in 1..n {
        let id = g.add_node(i);
        let parent = NodeId::from_index(rng.gen_range(0..i));
        let _ = g.add_edge(parent, id);
    }
    g
}

/// Fraction of non-source nodes that have exactly one caller.
///
/// This is the paper's "single-upstream stub microservice" statistic (§3.2):
/// 74 % for the top-4 Alibaba applications and 82 % across all 18.
pub fn single_upstream_fraction<N>(g: &DiGraph<N>) -> f64 {
    let non_sources: Vec<NodeId> = g.node_ids().filter(|&n| g.in_degree(n) > 0).collect();
    if non_sources.is_empty() {
        return 0.0;
    }
    let singles = non_sources.iter().filter(|&&n| g.in_degree(n) == 1).count();
    singles as f64 / non_sources.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topo::is_dag;
    use crate::traversal::covers_all;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn attachment_dag_is_dag_and_connected_from_sources() {
        let mut rng = StdRng::seed_from_u64(7);
        let g = attachment_dag(
            &mut rng,
            &AttachmentConfig {
                nodes: 200,
                entry_nodes: 3,
                ..AttachmentConfig::default()
            },
        );
        assert_eq!(g.node_count(), 200);
        assert!(is_dag(&g));
        assert!(covers_all(&g, g.sources()));
    }

    #[test]
    fn attachment_single_upstream_tracks_config() {
        let mut rng = StdRng::seed_from_u64(42);
        let low = attachment_dag(
            &mut rng,
            &AttachmentConfig {
                nodes: 2000,
                multi_parent_prob: 0.18,
                ..AttachmentConfig::default()
            },
        );
        let frac = single_upstream_fraction(&low);
        assert!(
            (0.75..=0.90).contains(&frac),
            "single-upstream fraction {frac} out of expected band"
        );
    }

    #[test]
    fn attachment_minimum_size() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = attachment_dag(
            &mut rng,
            &AttachmentConfig {
                nodes: 1,
                entry_nodes: 1,
                ..AttachmentConfig::default()
            },
        );
        assert_eq!(g.node_count(), 1);
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn layered_dag_every_non_entry_has_parent() {
        let mut rng = StdRng::seed_from_u64(11);
        let g = layered_dag(
            &mut rng,
            &LayeredConfig {
                layer_widths: vec![3, 5, 8, 5, 2],
                edge_prob: 0.3,
                skip_prob: 0.1,
            },
        );
        assert!(is_dag(&g));
        assert_eq!(g.node_count(), 23);
        for (id, &(layer, _)) in g.nodes() {
            if layer > 0 {
                assert!(g.in_degree(id) >= 1, "{id} in layer {layer} is orphaned");
            }
        }
        assert!(covers_all(&g, g.sources()));
    }

    #[test]
    fn random_tree_shape() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = random_tree(&mut rng, 64);
        assert!(is_dag(&g));
        assert_eq!(g.edge_count(), 63);
        // Every non-root has exactly one parent.
        assert_eq!(single_upstream_fraction(&g), 1.0);
    }

    #[test]
    fn deterministic_under_seed() {
        let mk = || {
            let mut rng = StdRng::seed_from_u64(99);
            attachment_dag(&mut rng, &AttachmentConfig::default())
        };
        let (a, b) = (mk(), mk());
        assert_eq!(a.edges().collect::<Vec<_>>(), b.edges().collect::<Vec<_>>());
    }
}
