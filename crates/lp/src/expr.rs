use std::fmt;
use std::ops::{Add, AddAssign, Mul, Neg, Sub};

/// Identifier of a decision variable inside a [`crate::Model`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VarId(pub(crate) u32);

impl VarId {
    /// Dense index of the variable in its model.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// A linear expression `Σ coeff·var + constant`.
///
/// Built from variables and `f64`s with ordinary operators. Terms on the
/// same variable are merged by [`LinExpr::normalize`], which model-building
/// calls apply automatically.
///
/// # Examples
///
/// ```
/// use phoenix_lp::{LinExpr, Model, Sense, VarKind};
///
/// let mut m = Model::new(Sense::Maximize);
/// let x = m.add_var("x", VarKind::Continuous, 0.0, 1.0);
/// let y = m.add_var("y", VarKind::Continuous, 0.0, 1.0);
/// let e: LinExpr = LinExpr::term(x, 2.0) + LinExpr::term(y, 1.0) + 3.0;
/// assert_eq!(e.constant(), 3.0);
/// assert_eq!(e.coeff(x), 2.0);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct LinExpr {
    terms: Vec<(VarId, f64)>,
    constant: f64,
}

impl LinExpr {
    /// The zero expression.
    pub fn new() -> LinExpr {
        LinExpr::default()
    }

    /// A single term `coeff * var`.
    pub fn term(var: VarId, coeff: f64) -> LinExpr {
        LinExpr {
            terms: vec![(var, coeff)],
            constant: 0.0,
        }
    }

    /// A constant expression.
    pub fn constant_expr(c: f64) -> LinExpr {
        LinExpr {
            terms: Vec::new(),
            constant: c,
        }
    }

    /// Builds an expression from `(var, coeff)` pairs.
    pub fn from_terms(terms: impl IntoIterator<Item = (VarId, f64)>) -> LinExpr {
        LinExpr {
            terms: terms.into_iter().collect(),
            constant: 0.0,
        }
    }

    /// Adds `coeff * var` in place.
    pub fn add_term(&mut self, var: VarId, coeff: f64) -> &mut LinExpr {
        self.terms.push((var, coeff));
        self
    }

    /// The additive constant.
    pub fn constant(&self) -> f64 {
        self.constant
    }

    /// Total coefficient of `var` (0.0 when absent).
    pub fn coeff(&self, var: VarId) -> f64 {
        self.terms
            .iter()
            .filter(|(v, _)| *v == var)
            .map(|(_, c)| c)
            .sum()
    }

    /// The `(var, coeff)` terms (possibly unmerged until normalized).
    pub fn terms(&self) -> &[(VarId, f64)] {
        &self.terms
    }

    /// Merges duplicate variables and drops zero coefficients.
    pub fn normalize(&mut self) {
        self.terms.sort_by_key(|(v, _)| *v);
        let mut merged: Vec<(VarId, f64)> = Vec::with_capacity(self.terms.len());
        for &(v, c) in &self.terms {
            match merged.last_mut() {
                Some((lv, lc)) if *lv == v => *lc += c,
                _ => merged.push((v, c)),
            }
        }
        merged.retain(|(_, c)| c.abs() > 0.0);
        self.terms = merged;
    }

    /// Evaluates the expression against a dense assignment.
    ///
    /// # Panics
    ///
    /// Panics if a referenced variable index is out of bounds for `values`.
    pub fn eval(&self, values: &[f64]) -> f64 {
        self.constant
            + self
                .terms
                .iter()
                .map(|&(v, c)| c * values[v.index()])
                .sum::<f64>()
    }

    /// Splits off the additive constant, returning the pure-linear part and
    /// the constant separately.
    pub fn split_constant(mut self) -> (LinExpr, f64) {
        let k = self.constant;
        self.constant = 0.0;
        (self, k)
    }

    /// Returns `true` when any coefficient or the constant is NaN/infinite.
    pub fn has_non_finite(&self) -> bool {
        !self.constant.is_finite() || self.terms.iter().any(|(_, c)| !c.is_finite())
    }
}

impl From<VarId> for LinExpr {
    fn from(v: VarId) -> LinExpr {
        LinExpr::term(v, 1.0)
    }
}

impl From<f64> for LinExpr {
    fn from(c: f64) -> LinExpr {
        LinExpr::constant_expr(c)
    }
}

impl FromIterator<(VarId, f64)> for LinExpr {
    fn from_iter<T: IntoIterator<Item = (VarId, f64)>>(iter: T) -> LinExpr {
        LinExpr::from_terms(iter)
    }
}

impl Add for LinExpr {
    type Output = LinExpr;

    fn add(mut self, rhs: LinExpr) -> LinExpr {
        self.terms.extend(rhs.terms);
        self.constant += rhs.constant;
        self
    }
}

impl Add<f64> for LinExpr {
    type Output = LinExpr;

    fn add(mut self, rhs: f64) -> LinExpr {
        self.constant += rhs;
        self
    }
}

impl AddAssign for LinExpr {
    fn add_assign(&mut self, rhs: LinExpr) {
        self.terms.extend(rhs.terms);
        self.constant += rhs.constant;
    }
}

impl Sub for LinExpr {
    type Output = LinExpr;

    fn sub(mut self, rhs: LinExpr) -> LinExpr {
        self.terms
            .extend(rhs.terms.into_iter().map(|(v, c)| (v, -c)));
        self.constant -= rhs.constant;
        self
    }
}

impl Neg for LinExpr {
    type Output = LinExpr;

    fn neg(mut self) -> LinExpr {
        for (_, c) in &mut self.terms {
            *c = -*c;
        }
        self.constant = -self.constant;
        self
    }
}

impl Mul<f64> for LinExpr {
    type Output = LinExpr;

    fn mul(mut self, rhs: f64) -> LinExpr {
        for (_, c) in &mut self.terms {
            *c *= rhs;
        }
        self.constant *= rhs;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: u32) -> VarId {
        VarId(i)
    }

    #[test]
    fn build_and_eval() {
        let e = LinExpr::term(v(0), 2.0) + LinExpr::term(v(1), -1.0) + 5.0;
        assert_eq!(e.eval(&[3.0, 4.0]), 2.0 * 3.0 - 4.0 + 5.0);
    }

    #[test]
    fn normalize_merges_and_drops_zeros() {
        let mut e = LinExpr::from_terms([(v(1), 2.0), (v(0), 1.0), (v(1), -2.0), (v(2), 0.5)]);
        e.normalize();
        assert_eq!(e.terms(), &[(v(0), 1.0), (v(2), 0.5)]);
        assert_eq!(e.coeff(v(1)), 0.0);
    }

    #[test]
    fn operators() {
        let a = LinExpr::term(v(0), 1.0);
        let b = LinExpr::term(v(0), 3.0);
        let mut d = (a.clone() - b) * 2.0;
        d.normalize();
        assert_eq!(d.coeff(v(0)), -4.0);
        let n = -LinExpr::term(v(1), 2.5) + 1.0;
        assert_eq!(n.coeff(v(1)), -2.5);
        assert_eq!(n.constant(), 1.0);
    }

    #[test]
    fn non_finite_detection() {
        let e = LinExpr::term(v(0), f64::NAN);
        assert!(e.has_non_finite());
        let ok = LinExpr::term(v(0), 1.0) + 2.0;
        assert!(!ok.has_non_finite());
    }
}
