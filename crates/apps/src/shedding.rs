//! Request-level load shedding and QoS degradation (§7, *Other
//! degradation modes*).
//!
//! Diagonal scaling turns whole containers off; the paper notes it is
//! orthogonal to the degradation modes applications already run
//! *inside* a container — dropping a fraction of the load (load shedding
//! [43, 78–82]) and serving requests in a cheaper mode (brownout / QoS
//! dimming [33, 71]) — and that Phoenix "can be combined with these
//! complementary resilience solutions". This module provides that
//! combination for [`AppModel`]s:
//!
//! * an **overload scenario** fixes the offered load and the serving
//!   capacity the app's *activated* containers provide — diagonal scaling
//!   enters through the `service_up` predicate, exactly as in
//!   [`AppModel::outcomes`];
//! * a [`SheddingPolicy`] decides which requests are admitted when offered
//!   load exceeds capacity. `None` reproduces congestion collapse (goodput
//!   falls as overload grows — the failure mode shedding exists to
//!   prevent); `Uniform` drops all request types proportionally;
//!   `PriorityAware` fills capacity by utility-per-request, so the
//!   critical request survives 2× overload untouched;
//! * a [`QosPolicy`] optionally dims requests under overload: each served
//!   request costs less and harvests less, trading per-request quality for
//!   admitted volume — worth it whenever `utility_factor > cost_factor`.
//!
//! The ablation bench `ablation_degradation_modes` compares diagonal-only,
//! shedding-only, and combined operation on the CloudLab app models.

use phoenix_core::spec::{AppId, ModeAssignment, ServiceId, ServingMode};

use crate::catalog::AppModel;

/// Admission-control policy under overload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SheddingPolicy {
    /// No admission control: every request enters and competes for
    /// capacity. Past saturation, goodput *decays* with offered load
    /// (retries, queue bloat): `goodput = capacity²/demand` — the classic
    /// congestion-collapse model from the overload literature the paper
    /// cites.
    #[default]
    None,
    /// Admit the same fraction of every request type so that admitted load
    /// equals capacity. Goodput holds at capacity, but critical and
    /// optional requests are shed alike.
    Uniform,
    /// Admit request types in decreasing utility-per-request order (the
    /// app's critical request first among ties), partially admitting the
    /// marginal type. Low-value requests absorb the entire shortfall.
    PriorityAware,
}

impl SheddingPolicy {
    /// Label for reports.
    pub fn label(self) -> &'static str {
        match self {
            SheddingPolicy::None => "no-shedding",
            SheddingPolicy::Uniform => "uniform-shed",
            SheddingPolicy::PriorityAware => "priority-shed",
        }
    }
}

/// Quality-of-service dimming policy.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum QosPolicy {
    /// Always serve at full quality.
    #[default]
    Full,
    /// When offered load exceeds capacity, serve every admitted request in
    /// a degraded mode: cheaper to serve, lower harvest.
    DimUnderOverload {
        /// Serving cost multiplier in degraded mode (0 < factor ≤ 1).
        cost_factor: f64,
        /// Harvest multiplier in degraded mode (0 ≤ factor ≤ 1).
        utility_factor: f64,
    },
}

impl QosPolicy {
    /// Label for reports.
    pub fn label(self) -> &'static str {
        match self {
            QosPolicy::Full => "full-qos",
            QosPolicy::DimUnderOverload { .. } => "dimmed-qos",
        }
    }
}

/// The load/capacity situation an app faces after a failure.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OverloadScenario {
    /// Offered load as a multiple of the nominal request mix (1.0 =
    /// normal day, 2.0 = the flash crowd that follows a region failover).
    pub load_multiplier: f64,
    /// Serving capacity of the app's activated containers, in requests
    /// per second at full QoS (each request costs one unit).
    pub capacity_rps: f64,
}

/// Per-request-type outcome under shedding.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShedOutcome {
    /// Index into [`AppModel::requests`].
    pub request: usize,
    /// Offered requests per second (nominal × multiplier).
    pub offered_rps: f64,
    /// Requests per second past admission control.
    pub admitted_rps: f64,
    /// Requests per second actually served (0 when the request type fails
    /// because a required container is off).
    pub served_rps: f64,
    /// Harvest per second: `served × per-request utility × QoS factor`.
    pub utility_rate: f64,
}

/// Aggregate view over [`ShedOutcome`]s.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShedSummary {
    /// Total served requests per second.
    pub served_rps: f64,
    /// Total harvest per second.
    pub utility_rate: f64,
    /// Served fraction of the critical request type's offered load.
    pub critical_served_frac: f64,
}

/// Evaluates `model` under an overload scenario, a shedding policy, and a
/// QoS policy, with container availability given by `service_up` (the
/// diagonal-scaling input).
///
/// Request types whose required containers are off fail fast and consume
/// no capacity; their load is lost, not shed.
///
/// # Examples
///
/// ```
/// use phoenix_apps::overleaf::{overleaf, OverleafVariant};
/// use phoenix_apps::shedding::{shed, summarize, OverloadScenario, QosPolicy, SheddingPolicy};
///
/// let model = overleaf("overleaf0", OverleafVariant::Edits, 1.0);
/// let nominal: f64 = model.requests.iter().map(|r| r.rate_rps).sum();
/// // A 2x flash crowd against half the nominal serving capacity.
/// let scenario = OverloadScenario {
///     load_multiplier: 2.0,
///     capacity_rps: nominal * 0.5,
/// };
/// let run = |policy| {
///     summarize(&model, &shed(&model, |_| true, &scenario, policy, QosPolicy::Full))
/// };
/// let uniform = run(SheddingPolicy::Uniform);
/// let priority = run(SheddingPolicy::PriorityAware);
/// // Both hold goodput at capacity, but priority shedding spends it on
/// // the critical request (edits) first.
/// assert!(priority.critical_served_frac > uniform.critical_served_frac);
/// assert!(priority.served_rps <= nominal * 0.5 + 1e-9);
/// ```
pub fn shed(
    model: &AppModel,
    mut service_up: impl FnMut(ServiceId) -> bool,
    scenario: &OverloadScenario,
    policy: SheddingPolicy,
    qos: QosPolicy,
) -> Vec<ShedOutcome> {
    // Which types can serve at all, and at what per-request utility, is
    // diagonal scaling's verdict — delegate to the catalog semantics.
    let base = model.outcomes(&mut service_up);
    let m = scenario.load_multiplier.max(0.0);
    let offered: Vec<f64> = base.iter().map(|o| o.offered_rps * m).collect();
    let alive: Vec<bool> = base.iter().map(|o| o.served_rps > 0.0).collect();
    let live_demand: f64 = offered
        .iter()
        .zip(&alive)
        .filter(|&(_, &a)| a)
        .map(|(&o, _)| o)
        .sum();

    let overloaded = live_demand > scenario.capacity_rps + 1e-12;
    let (cost_factor, utility_factor) = match qos {
        QosPolicy::Full => (1.0, 1.0),
        QosPolicy::DimUnderOverload {
            cost_factor,
            utility_factor,
        } => {
            if overloaded {
                (cost_factor.clamp(1e-9, 1.0), utility_factor.clamp(0.0, 1.0))
            } else {
                (1.0, 1.0)
            }
        }
    };
    // Dimming stretches capacity: at cost_factor f, the same containers
    // serve 1/f as many requests.
    let effective_capacity = scenario.capacity_rps / cost_factor;

    let admitted = admit(
        model,
        &offered,
        &alive,
        live_demand,
        effective_capacity,
        policy,
    );

    base.iter()
        .enumerate()
        .map(|(i, o)| {
            let served = if alive[i] { admitted[i] } else { 0.0 };
            ShedOutcome {
                request: i,
                offered_rps: offered[i],
                admitted_rps: admitted[i],
                served_rps: served,
                utility_rate: served * o.utility * utility_factor,
            }
        })
        .collect()
}

/// [`shed`] under a planner [`ModeAssignment`]: the serving-mode bridge.
///
/// Availability follows the catalog semantics
/// ([`AppModel::outcomes_under_modes`]) — a service is up unless its
/// chosen mode is [`ServingMode::Shed`]. Dimmed modes (`StaleCache` /
/// `ReadOnly`) become a [`QosPolicy::DimUnderOverload`] whose factors are
/// taken from the *most degraded* dimmed service's ladder: cost = that
/// mode's demand as a fraction of the `Full` demand (a cheaper container
/// serves proportionally cheaper requests), utility = the mode's weight.
/// An all-`Full` assignment reduces exactly to
/// `shed(.., QosPolicy::Full)`.
pub fn shed_under_modes(
    model: &AppModel,
    app: AppId,
    modes: &ModeAssignment,
    scenario: &OverloadScenario,
    policy: SheddingPolicy,
) -> Vec<ShedOutcome> {
    let mut qos = QosPolicy::Full;
    let mut worst = f64::INFINITY;
    for (i, svc) in model.spec.services().iter().enumerate() {
        let mode = modes.get(app, ServiceId::new(i as u32));
        if mode == ServingMode::Full || mode == ServingMode::Shed {
            continue;
        }
        let weight = svc.mode_utility(mode);
        if weight < worst {
            worst = weight;
            let full = svc.demand.scalar();
            let cost = if full > 0.0 {
                (svc.mode_demand(mode).scalar() / full).clamp(1e-9, 1.0)
            } else {
                1.0
            };
            qos = QosPolicy::DimUnderOverload {
                cost_factor: cost,
                utility_factor: weight.clamp(0.0, 1.0),
            };
        }
    }
    shed(
        model,
        |s| modes.get(app, s) != ServingMode::Shed,
        scenario,
        policy,
        qos,
    )
}

/// Admission per request type, in offered-RPS units.
fn admit(
    model: &AppModel,
    offered: &[f64],
    alive: &[bool],
    live_demand: f64,
    capacity: f64,
    policy: SheddingPolicy,
) -> Vec<f64> {
    let mut admitted = vec![0.0; offered.len()];
    if live_demand <= capacity {
        for i in 0..offered.len() {
            if alive[i] {
                admitted[i] = offered[i];
            }
        }
        return admitted;
    }
    match policy {
        SheddingPolicy::None => {
            // Congestion collapse: goodput = capacity × (capacity/demand),
            // spread proportionally to offered load.
            let goodput = capacity * (capacity / live_demand);
            for i in 0..offered.len() {
                if alive[i] {
                    admitted[i] = offered[i] / live_demand * goodput;
                }
            }
        }
        SheddingPolicy::Uniform => {
            let frac = capacity / live_demand;
            for i in 0..offered.len() {
                if alive[i] {
                    admitted[i] = offered[i] * frac;
                }
            }
        }
        SheddingPolicy::PriorityAware => {
            // Utility-per-request order; the critical request wins ties.
            let mut order: Vec<usize> = (0..offered.len()).filter(|&i| alive[i]).collect();
            order.sort_by(|&a, &b| {
                let (ua, ub) = (
                    model.requests[a].utility_full,
                    model.requests[b].utility_full,
                );
                ub.total_cmp(&ua)
                    .then_with(|| (b == model.critical_request).cmp(&(a == model.critical_request)))
                    .then(a.cmp(&b))
            });
            let mut left = capacity;
            for i in order {
                let take = offered[i].min(left);
                admitted[i] = take;
                left -= take;
                if left <= 1e-12 {
                    break;
                }
            }
        }
    }
    admitted
}

/// Summarizes shed outcomes for one app.
pub fn summarize(model: &AppModel, outcomes: &[ShedOutcome]) -> ShedSummary {
    let served_rps = outcomes.iter().map(|o| o.served_rps).sum();
    let utility_rate = outcomes.iter().map(|o| o.utility_rate).sum();
    let crit = &outcomes[model.critical_request];
    ShedSummary {
        served_rps,
        utility_rate,
        critical_served_frac: if crit.offered_rps > 0.0 {
            crit.served_rps / crit.offered_rps
        } else {
            1.0
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::RequestType;
    use phoenix_cluster::Resources;
    use phoenix_core::spec::AppSpecBuilder;
    use phoenix_core::tags::Criticality;

    /// Critical "pay" (utility 1.0, 60 rps) and optional "browse"
    /// (utility 0.3, 140 rps); browse routes through an optional C5
    /// recommender.
    fn shop() -> AppModel {
        let mut b = AppSpecBuilder::new("shop");
        let fe = b.add_service("fe", Resources::cpu(2.0), Some(Criticality::C1), 1);
        let pay = b.add_service("pay", Resources::cpu(2.0), Some(Criticality::C1), 1);
        let rec = b.add_service("rec", Resources::cpu(1.0), Some(Criticality::new(5)), 1);
        b.add_dependency(fe, pay);
        b.add_dependency(fe, rec);
        AppModel {
            spec: b.build().unwrap(),
            requests: vec![
                RequestType {
                    name: "pay".into(),
                    path: vec![fe, pay],
                    optional: vec![],
                    rate_rps: 60.0,
                    utility_full: 1.0,
                    utility_degraded: 1.0,
                },
                RequestType {
                    name: "browse".into(),
                    path: vec![fe, rec],
                    optional: vec![rec],
                    rate_rps: 140.0,
                    utility_full: 0.3,
                    utility_degraded: 0.2,
                },
            ],
            crash_proof: true,
            critical_request: 0,
        }
    }

    fn all_up(_: ServiceId) -> bool {
        true
    }

    #[test]
    fn no_overload_admits_everything_under_all_policies() {
        let m = shop();
        let scenario = OverloadScenario {
            load_multiplier: 1.0,
            capacity_rps: 200.0,
        };
        for policy in [
            SheddingPolicy::None,
            SheddingPolicy::Uniform,
            SheddingPolicy::PriorityAware,
        ] {
            let out = shed(&m, all_up, &scenario, policy, QosPolicy::Full);
            let s = summarize(&m, &out);
            assert_eq!(s.served_rps, 200.0, "{}", policy.label());
            assert_eq!(s.critical_served_frac, 1.0);
        }
    }

    #[test]
    fn congestion_collapse_without_shedding() {
        let m = shop();
        let scenario = OverloadScenario {
            load_multiplier: 2.0, // offered 400 vs capacity 200
            capacity_rps: 200.0,
        };
        let none = summarize(
            &m,
            &shed(&m, all_up, &scenario, SheddingPolicy::None, QosPolicy::Full),
        );
        let uniform = summarize(
            &m,
            &shed(
                &m,
                all_up,
                &scenario,
                SheddingPolicy::Uniform,
                QosPolicy::Full,
            ),
        );
        // Collapse: goodput 200×(200/400) = 100 < 200 held by shedding.
        assert!((none.served_rps - 100.0).abs() < 1e-9);
        assert!((uniform.served_rps - 200.0).abs() < 1e-9);
        assert!(none.utility_rate < uniform.utility_rate);
    }

    #[test]
    fn priority_shedding_protects_the_critical_request() {
        let m = shop();
        let scenario = OverloadScenario {
            load_multiplier: 2.0,
            capacity_rps: 200.0,
        };
        let uniform = summarize(
            &m,
            &shed(
                &m,
                all_up,
                &scenario,
                SheddingPolicy::Uniform,
                QosPolicy::Full,
            ),
        );
        let priority = summarize(
            &m,
            &shed(
                &m,
                all_up,
                &scenario,
                SheddingPolicy::PriorityAware,
                QosPolicy::Full,
            ),
        );
        // Uniform sheds pay to 50 %; priority serves all 120 offered pay rps
        // and gives browse the 80 rps remainder.
        assert!((uniform.critical_served_frac - 0.5).abs() < 1e-9);
        assert_eq!(priority.critical_served_frac, 1.0);
        assert!(priority.utility_rate > uniform.utility_rate);
        // Both hold total goodput at capacity.
        assert!((priority.served_rps - 200.0).abs() < 1e-9);
    }

    #[test]
    fn partial_admission_of_the_marginal_type() {
        let m = shop();
        let out = shed(
            &m,
            all_up,
            &OverloadScenario {
                load_multiplier: 1.0,
                capacity_rps: 100.0,
            },
            SheddingPolicy::PriorityAware,
            QosPolicy::Full,
        );
        assert_eq!(out[0].admitted_rps, 60.0);
        assert!((out[1].admitted_rps - 40.0).abs() < 1e-9);
    }

    #[test]
    fn qos_dimming_stretches_capacity() {
        let m = shop();
        let scenario = OverloadScenario {
            load_multiplier: 2.0,
            capacity_rps: 200.0,
        };
        let dim = QosPolicy::DimUnderOverload {
            cost_factor: 0.5,
            utility_factor: 0.8,
        };
        let full = summarize(
            &m,
            &shed(
                &m,
                all_up,
                &scenario,
                SheddingPolicy::Uniform,
                QosPolicy::Full,
            ),
        );
        let dimmed = summarize(
            &m,
            &shed(&m, all_up, &scenario, SheddingPolicy::Uniform, dim),
        );
        // Half-cost requests double effective capacity: all 400 rps served.
        assert!((dimmed.served_rps - 400.0).abs() < 1e-9);
        assert!(dimmed.served_rps > full.served_rps);
        // utility_factor (0.8) > cost_factor (0.5) ⇒ dimming wins overall.
        assert!(dimmed.utility_rate > full.utility_rate);
    }

    #[test]
    fn qos_dimming_inactive_without_overload() {
        let m = shop();
        let dim = QosPolicy::DimUnderOverload {
            cost_factor: 0.5,
            utility_factor: 0.1,
        };
        let out = shed(
            &m,
            all_up,
            &OverloadScenario {
                load_multiplier: 1.0,
                capacity_rps: 500.0,
            },
            SheddingPolicy::Uniform,
            dim,
        );
        let s = summarize(&m, &out);
        // No overload ⇒ full quality, full harvest.
        assert!((s.utility_rate - (60.0 + 140.0 * 0.3)).abs() < 1e-9);
    }

    #[test]
    fn diagonal_scaling_composes_with_shedding() {
        let m = shop();
        let scenario = OverloadScenario {
            load_multiplier: 2.0,
            capacity_rps: 150.0,
        };
        // Diagonal scaling turned the recommender off: browse degrades but
        // still serves (crash-proof), pay unaffected.
        let rec_down = |s: ServiceId| s.index() != 2;
        let out = shed(
            &m,
            rec_down,
            &scenario,
            SheddingPolicy::PriorityAware,
            QosPolicy::Full,
        );
        let s = summarize(&m, &out);
        assert_eq!(s.critical_served_frac, 1.0);
        // Browse survives at degraded utility 0.2 for the 30 rps remainder.
        assert!((out[1].served_rps - 30.0).abs() < 1e-9);
        assert!((out[1].utility_rate - 30.0 * 0.2).abs() < 1e-9);
    }

    #[test]
    fn failed_required_service_loses_load_entirely() {
        let m = shop();
        // Pay service down: the critical type fails regardless of policy.
        let pay_down = |s: ServiceId| s.index() != 1;
        let out = shed(
            &m,
            pay_down,
            &OverloadScenario {
                load_multiplier: 1.0,
                capacity_rps: 500.0,
            },
            SheddingPolicy::PriorityAware,
            QosPolicy::Full,
        );
        assert_eq!(out[0].served_rps, 0.0);
        assert_eq!(out[0].utility_rate, 0.0);
        // Browse is unaffected and fully served.
        assert_eq!(out[1].served_rps, 140.0);
        let s = summarize(&m, &out);
        assert_eq!(s.critical_served_frac, 0.0);
    }

    #[test]
    fn mode_assignment_drives_shedding_and_qos() {
        use crate::hotel::{hotel_modal, HotelVariant};
        use phoenix_core::spec::Workload;

        let m = hotel_modal("hr", HotelVariant::Reserve, 1.0);
        let nominal: f64 = m.requests.iter().map(|r| r.rate_rps).sum();
        let scenario = OverloadScenario {
            load_multiplier: 2.0,
            capacity_rps: nominal * 0.6,
        };
        let app = AppId::new(0);
        let w = Workload::new(vec![m.spec.clone()]);

        // All-Full reduces exactly to the plain shed path.
        let full = shed_under_modes(
            &m,
            app,
            &ModeAssignment::empty(),
            &scenario,
            SheddingPolicy::Uniform,
        );
        let plain = shed(
            &m,
            |_| true,
            &scenario,
            SheddingPolicy::Uniform,
            QosPolicy::Full,
        );
        assert_eq!(full, plain);

        // user in ReadOnly (guest mode, 0.5x demand / 0.5 weight): the dim
        // stretches capacity, so more requests are served than at full QoS.
        let mut modes = ModeAssignment::for_workload(&w);
        modes.set(app, ServiceId::new(6), ServingMode::ReadOnly);
        let dimmed = shed_under_modes(&m, app, &modes, &scenario, SheddingPolicy::Uniform);
        let s_full = summarize(&m, &full);
        let s_dim = summarize(&m, &dimmed);
        assert!(s_dim.served_rps > s_full.served_rps);

        // Shedding recommendation behaves like turning the service off:
        // the recommend request fails and consumes no capacity.
        modes.set(app, ServiceId::new(5), ServingMode::Shed);
        let shed_rec = shed_under_modes(&m, app, &modes, &scenario, SheddingPolicy::Uniform);
        assert_eq!(shed_rec[1].served_rps, 0.0);
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(SheddingPolicy::None.label(), "no-shedding");
        assert_eq!(SheddingPolicy::Uniform.label(), "uniform-shed");
        assert_eq!(SheddingPolicy::PriorityAware.label(), "priority-shed");
        assert_eq!(QosPolicy::Full.label(), "full-qos");
        assert_eq!(
            QosPolicy::DimUnderOverload {
                cost_factor: 0.5,
                utility_factor: 0.8
            }
            .label(),
            "dimmed-qos"
        );
    }
}
