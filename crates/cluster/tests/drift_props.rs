//! Property tests: per-node `used` accounting is drift-free.
//!
//! `ClusterState::remove` recomputes `used` exactly from the surviving
//! pods instead of decrementing, so thousands of assign/remove cycles
//! with non-representable demands cannot accumulate f64 rounding error.
//! Without that, the `SortedNodes` remaining-capacity keys of a churned
//! ("warm") state diverge bitwise from a freshly-built ("cold") state
//! holding the very same pods — and warm/cold planning paths stop
//! agreeing on best-fit order.

use phoenix_cluster::{ClusterState, NodeId, PodKey, Resources, SortedNodes};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn churned_state_matches_fresh_state_bit_for_bit(
        ops in proptest::collection::vec(
            (0usize..64, 0.01f64..4.0, any::<bool>()),
            200..1500,
        ),
        nodes in 2usize..8,
    ) {
        let capacity = Resources::new(64.0, 64.0);
        let mut state = ClusterState::homogeneous(nodes, capacity);
        let mut live: Vec<PodKey> = Vec::new();
        let mut next = 0u32;
        for (sel, demand, assign) in ops {
            if assign || live.is_empty() {
                let pod = PodKey::new(0, next, 0);
                next += 1;
                let node = NodeId::new((sel % nodes) as u32);
                // Deliberately drifty demands: products of decimals are
                // not exactly representable, so incremental +=/-= pairs
                // do not cancel.
                let d = Resources::new(demand * 0.1, demand * 0.3);
                if state.assign(pod, d, node).is_ok() {
                    live.push(pod);
                }
            } else {
                let pod = live.swap_remove(sel % live.len());
                state.remove(pod).unwrap();
            }
        }
        // The invariant check is exact (bitwise) since the drift fix.
        state.check_invariants().unwrap();

        // A fresh state replaying the surviving pods in pod-list order
        // must agree on every remaining-capacity bit — this is the
        // warm-vs-cold `SortedNodes` key agreement.
        let mut fresh = ClusterState::homogeneous(nodes, capacity);
        let mut churned_keys = SortedNodes::new();
        let mut fresh_keys = SortedNodes::new();
        for n in state.node_ids() {
            for &p in state.pods_on(n) {
                fresh.assign(p, state.demand_of(p).unwrap(), n).unwrap();
            }
        }
        for n in state.node_ids() {
            prop_assert_eq!(
                state.remaining(n).cpu.to_bits(),
                fresh.remaining(n).cpu.to_bits(),
                "cpu drift on {}", n
            );
            prop_assert_eq!(
                state.remaining(n).mem.to_bits(),
                fresh.remaining(n).mem.to_bits(),
                "mem drift on {}", n
            );
            churned_keys.insert(n, state.remaining(n).scalar());
            fresh_keys.insert(n, fresh.remaining(n).scalar());
        }
        let order = |s: &SortedNodes| s.iter_asc().map(|(n, k)| (n, k.to_bits())).collect::<Vec<_>>();
        prop_assert_eq!(order(&churned_keys), order(&fresh_keys));

        // Draining every pod restores full capacity exactly.
        let all: Vec<PodKey> = state.assignments().map(|(p, _, _)| p).collect();
        for p in all {
            state.remove(p).unwrap();
        }
        for n in state.node_ids() {
            prop_assert_eq!(state.remaining(n).cpu.to_bits(), capacity.cpu.to_bits());
            prop_assert_eq!(state.remaining(n).mem.to_bits(), capacity.mem.to_bits());
        }
    }
}
