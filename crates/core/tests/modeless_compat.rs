//! Backward-compat regression corpus: mode-less specs must plan
//! **byte-identically** to the pre-serving-modes planner.
//!
//! The fixture under `tests/fixtures/modeless_plans.txt` was generated from
//! the planner *before* the (service, mode) refactor landed; every plan a
//! mode-less workload produces — cold, warm, and sharded — is rendered to
//! canonical JSON and compared against those bytes. Regenerate only when a
//! deliberate planner behavior change is intended:
//!
//! ```text
//! PHOENIX_UPDATE_FIXTURES=1 cargo test -p phoenix-core --test modeless_compat
//! ```

use phoenix_cluster::{ClusterState, NodeId, Resources};
use phoenix_core::controller::{plan_with_pool, PhoenixConfig};
use phoenix_core::objectives::ObjectiveKind;
use phoenix_core::replan::{replan_with_pool, ReplanCache, ReplanDelta};
use phoenix_core::spec::{AppSpecBuilder, Workload};
use phoenix_core::tags::Criticality;
use phoenix_exec::Pool;

const FIXTURE: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/fixtures/modeless_plans.txt"
);

/// The replan suite's mixed churn fixture: chained apps with graphs, a
/// flat app, uneven prices and replica counts.
fn mixed_workload(seed: u64) -> Workload {
    let mut apps = Vec::new();
    for a in 0..6u64 {
        let mut b = AppSpecBuilder::new(format!("app{a}"));
        let n = 3 + ((a + seed) % 4) as usize;
        let ids: Vec<_> = (0..n)
            .map(|s| {
                b.add_service(
                    format!("s{s}"),
                    Resources::cpu(1.0 + ((s as u64 + seed) % 3) as f64),
                    Some(Criticality::new(1 + ((s as u64 * 7 + a) % 5) as u8)),
                    1 + ((s as u64 + a) % 2) as u16,
                )
            })
            .collect();
        if a % 2 == 0 {
            for w in ids.windows(2) {
                b.add_dependency(w[0], w[1]);
            }
        }
        b.price_per_unit(1.0 + (a % 3) as f64);
        apps.push(b.build().unwrap());
    }
    Workload::new(apps)
}

/// Drives six churn rounds (failures, correlated failures, restores, a
/// steady round) and records the cold plan of every round, asserting the
/// warm and sharded-warm plans match it byte-for-byte along the way.
fn churn_lines(seed: u64, kind: ObjectiveKind, crunch: bool, out: &mut String) {
    let w = mixed_workload(seed);
    let cold_config = PhoenixConfig::with_objective(kind);
    let mut warm_config = PhoenixConfig::with_objective(kind);
    let mut sharded_config = PhoenixConfig::with_objective(kind);
    sharded_config.packing.shards = 3;
    sharded_config.packing.shard_chunk = 2;
    let mut warm_cache = ReplanCache::new();
    let mut sharded_cache = ReplanCache::new();
    warm_config.packing = cold_config.packing.clone();
    let (nodes, cpu) = if crunch { (4, 5.0) } else { (8, 4.0) };
    let mut live = ClusterState::homogeneous(nodes, Resources::cpu(cpu));
    for round in 0..6u32 {
        let cold = plan_with_pool(&w, &live, &cold_config, &Pool::sequential());
        let warm = replan_with_pool(
            &w,
            &live,
            &warm_config,
            &mut warm_cache,
            ReplanDelta::Full,
            &Pool::new(4),
        );
        let sharded = replan_with_pool(
            &w,
            &live,
            &sharded_config,
            &mut sharded_cache,
            ReplanDelta::CapacityOnly,
            &Pool::new(4),
        );
        let json = cold.actions.to_json();
        assert_eq!(json, warm.actions.to_json(), "warm diverged from cold");
        assert_eq!(
            json,
            sharded.actions.to_json(),
            "sharded warm diverged from cold"
        );
        out.push_str(&format!("seed{seed}/{kind}/crunch{crunch}/round{round}: "));
        out.push_str(&json);
        out.push('\n');

        live = warm.target.clone();
        match round {
            0 => {
                live.fail_node(NodeId::new(0));
            }
            1 => {
                live.fail_node(NodeId::new(1));
                if !crunch {
                    live.fail_node(NodeId::new(2));
                }
            }
            2 => {
                live.restore_node(NodeId::new(0));
            }
            3 => {} // steady round: capacity unchanged, full rank reuse
            _ => {
                live.restore_node(NodeId::new(1));
                if !crunch {
                    live.restore_node(NodeId::new(2));
                }
            }
        }
    }
}

#[test]
fn modeless_corpus_plans_are_byte_identical_to_prerefactor_fixture() {
    let mut got = String::new();
    for seed in [0u64, 3] {
        for kind in [ObjectiveKind::Fairness, ObjectiveKind::Cost] {
            for crunch in [false, true] {
                churn_lines(seed, kind, crunch, &mut got);
            }
        }
    }
    if std::env::var_os("PHOENIX_UPDATE_FIXTURES").is_some() {
        std::fs::create_dir_all(std::path::Path::new(FIXTURE).parent().unwrap()).unwrap();
        std::fs::write(FIXTURE, &got).unwrap();
        return;
    }
    let want = std::fs::read_to_string(FIXTURE)
        .expect("fixture missing — run once with PHOENIX_UPDATE_FIXTURES=1");
    assert_eq!(
        got, want,
        "mode-less planning drifted from the pre-refactor fixture"
    );
}
