//! Property tests: the control-plane simulation never violates capacity,
//! never serves from dead kubelets, and milestones stay ordered.

use phoenix_cluster::Resources;
use phoenix_core::policies::{DefaultPolicy, PhoenixPolicy, ResiliencePolicy};
use phoenix_core::spec::{AppSpecBuilder, Workload};
use phoenix_core::tags::Criticality;
use phoenix_kubesim::run::{simulate, simulate_from, SimConfig, SteadyState};
use phoenix_kubesim::scenario::Scenario;
use phoenix_kubesim::time::SimTime;
use proptest::prelude::*;

fn workload(services: usize) -> Workload {
    let mut b = AppSpecBuilder::new("w");
    for i in 0..services {
        b.add_service(
            format!("s{i}"),
            Resources::cpu(1.0 + (i % 2) as f64),
            Some(Criticality::new(1 + (i % 5) as u8)),
            1,
        );
    }
    Workload::new(vec![b.build().unwrap()])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn simulation_invariants(
        services in 2usize..10,
        nodes in 2u32..8,
        fail_at in 60u64..400,
        fail_count in 1u32..4,
        restore in proptest::bool::ANY,
        phoenix in proptest::bool::ANY,
    ) {
        let w = workload(services);
        let mut s = Scenario::new(nodes as usize, Resources::cpu(4.0));
        let victims: Vec<u32> = (0..fail_count.min(nodes)).collect();
        s.kubelet_stop_at(SimTime::from_secs(fail_at), victims.clone());
        if restore {
            s.kubelet_start_at(SimTime::from_secs(fail_at + 600), victims);
        }
        let policy: Box<dyn ResiliencePolicy> = if phoenix {
            Box::new(PhoenixPolicy::fair())
        } else {
            Box::new(DefaultPolicy)
        };
        let trace = simulate(&w, policy.as_ref(), &s, &SimConfig::default(),
            SimTime::from_secs(fail_at + 1200));

        // Milestones are time-ordered and detection follows failure.
        for win in trace.milestones.windows(2) {
            prop_assert!(win[0].at <= win[1].at);
        }
        if let (Some(f), Some(d)) = (trace.first("failure"), trace.first("detected")) {
            prop_assert!(d >= f);
        }
        // Serving sets are sorted, duplicate-free, and within the workload.
        for sample in &trace.samples {
            for win in sample.serving.windows(2) {
                prop_assert!(win[0] < win[1]);
            }
            for pod in &sample.serving {
                prop_assert!(w.service_of_pod(*pod).is_some());
            }
            // Serving demand never exceeds total healthy capacity.
            let demand: f64 = sample
                .serving
                .iter()
                .map(|p| w.service_of_pod(*p).unwrap().1.demand.cpu)
                .sum();
            prop_assert!(demand <= nodes as f64 * 4.0 + 1e-9);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Detection latency is bounded by grace + one monitor tick (§5): the
    /// failure is declared no earlier than the heartbeat grace and no
    /// later than one monitor period after the grace expires.
    #[test]
    fn detection_latency_bounded(
        monitor_secs in 5u64..60,
        grace_secs in 10u64..120,
        services in 2usize..8,
    ) {
        let w = workload(services);
        let mut scenario = Scenario::new(6, Resources::cpu(4.0));
        scenario.kubelet_stop_at(SimTime::from_secs(300), vec![0, 1]);
        let cfg = SimConfig {
            monitor_interval: SimTime::from_secs(monitor_secs),
            heartbeat_grace: SimTime::from_secs(grace_secs),
            ..SimConfig::default()
        };
        let trace = simulate(
            &w,
            &PhoenixPolicy::fair(),
            &scenario,
            &cfg,
            SimTime::from_secs(1200),
        );
        let failure = trace.first("failure").expect("kubelets stop");
        if let Some(detected) = trace.first("detected") {
            let latency = detected.saturating_sub(failure).as_secs_f64();
            prop_assert!(
                latency + 1e-9 >= grace_secs as f64,
                "detected {latency}s after failure, before the {grace_secs}s grace"
            );
            prop_assert!(
                latency <= (grace_secs + monitor_secs) as f64 + 1e-9,
                "detected {latency}s after failure, past grace {grace_secs}s + tick {monitor_secs}s"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The steady-state replay used by the clone-free campaign/hunt
    /// fan-outs is byte-equivalent to a cold simulation: same samples
    /// (serving sets, utility bits — so the mode ledger too), same
    /// milestones. A steady state captured on a *different* cluster
    /// shape must fall back to the cold plan and still agree.
    #[test]
    fn steady_replay_matches_cold_simulate(
        services in 2usize..8,
        nodes in 2u32..8,
        fail_at in 60u64..300,
        degrade in proptest::bool::ANY,
        phoenix in proptest::bool::ANY,
    ) {
        let w = workload(services);
        let mut s = Scenario::new(nodes as usize, Resources::cpu(4.0));
        s.kubelet_stop_at(SimTime::from_secs(fail_at), vec![0]);
        if degrade {
            s.capacity_degrade_at(SimTime::from_secs(fail_at + 120), vec![1], 0.5);
        }
        let policy: Box<dyn ResiliencePolicy> = if phoenix {
            Box::new(PhoenixPolicy::fair())
        } else {
            Box::new(DefaultPolicy)
        };
        let cfg = SimConfig::default();
        let horizon = SimTime::from_secs(fail_at + 900);

        let cold = simulate(&w, policy.as_ref(), &s, &cfg, horizon);
        let steady = SteadyState::compute(&w, policy.as_ref(), &s.node_capacities);
        let warm = simulate_from(&w, policy.as_ref(), &s, &cfg, horizon, Some(&steady));
        prop_assert_eq!(&cold.samples, &warm.samples);
        prop_assert_eq!(&cold.milestones, &warm.milestones);
        prop_assert_eq!(cold.plans.len(), warm.plans.len());

        // Shape mismatch → cold fallback, still byte-identical.
        let other = SteadyState::compute(
            &w,
            policy.as_ref(),
            &vec![Resources::cpu(8.0); nodes as usize + 1],
        );
        let fallback = simulate_from(&w, policy.as_ref(), &s, &cfg, horizon, Some(&other));
        prop_assert_eq!(&cold.samples, &fallback.samples);
        prop_assert_eq!(&cold.milestones, &fallback.milestones);
    }
}
