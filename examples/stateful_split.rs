//! Stateful-workload handling: split a mixed workload onto a dedicated
//! stateful cluster (the paper's §6.1 deployment), then run the pinned
//! co-location mode and watch a node failure degrade only the stateless
//! half while the database never moves.
//!
//! ```sh
//! cargo run --example stateful_split
//! ```

use phoenix::cluster::{ClusterState, Resources};
use phoenix::core::controller::{PhoenixConfig, PhoenixController};
use phoenix::core::spec::{AppSpecBuilder, SpecError, Workload};
use phoenix::core::stateful::{partition, place_stateful, plan_pinned, verify_pins, StatefulMarks};
use phoenix::core::tags::Criticality;

fn main() -> Result<(), SpecError> {
    // A document service: web tier + compile farm are stateless; MongoDB
    // and a Redis session cache hold state.
    let mut b = AppSpecBuilder::new("docs");
    let web = b.add_service("web", Resources::cpu(2.0), Some(Criticality::C1), 2);
    let compile = b.add_service("compile", Resources::cpu(2.0), Some(Criticality::C2), 1);
    let chat = b.add_service("chat", Resources::cpu(1.0), Some(Criticality::new(5)), 1);
    let mongo = b.add_service("mongodb", Resources::cpu(3.0), Some(Criticality::C1), 1);
    let redis = b.add_service(
        "redis-sessions",
        Resources::cpu(1.0),
        Some(Criticality::C1),
        1,
    );
    b.add_dependency(web, compile);
    b.add_dependency(web, chat);
    b.add_dependency(web, mongo);
    b.add_dependency(mongo, redis);
    let workload = Workload::new(vec![b.build()?]);

    let marks = StatefulMarks::by_name(&workload, |n| n.contains("mongo") || n.contains("redis"));
    println!("marked {} stateful services", marks.len());

    // --- Pattern 1: separate stateful cluster (§6.1) --------------------
    let part = partition(&workload, &marks);
    println!(
        "partition: {} stateless / {} stateful services",
        part.stateless
            .app(phoenix::core::spec::AppId::new(0))
            .service_count(),
        part.stateful
            .app(phoenix::core::spec::AppId::new(0))
            .service_count(),
    );

    let mut stateful_cluster = ClusterState::homogeneous(2, Resources::cpu(4.0));
    let placed = place_stateful(&part.stateful, &mut stateful_cluster)
        .expect("stateful cluster is provisioned for its workload");
    for (pod, node) in &placed {
        println!("  stateful {pod} pinned to {node}");
    }

    let compute = ClusterState::homogeneous(4, Resources::cpu(3.0));
    let controller = PhoenixController::new(part.stateless.clone(), PhoenixConfig::default());
    let plan = controller.plan(&compute);
    println!(
        "compute cluster plans {} stateless pods; stateful cluster untouched\n",
        plan.target.pod_count()
    );

    // --- Pattern 2: pinned co-location ----------------------------------
    let mut shared = ClusterState::homogeneous(4, Resources::cpu(4.0));
    let first = plan_pinned(&workload, &marks, &shared, &PhoenixConfig::default());
    for (pod, node, demand) in first.target.assignments() {
        shared.assign(pod, demand, node).expect("plan fits");
    }
    println!(
        "shared cluster: {} pods running (stateful co-located)",
        shared.pod_count()
    );

    // Fail everything except mongodb's node and one other: capacity drops
    // from 16 to 8 CPUs against 11 CPUs of demand. The stateless tail is
    // shed; the pins hold.
    let mongo_pod = shared
        .assignments()
        .find(|(p, _, _)| p.service == mongo.index() as u32)
        .map(|(p, n, _)| (p, n))
        .expect("mongo is running");
    let mut spared = 1;
    for node in shared.node_ids() {
        if node == mongo_pod.1 {
            continue;
        }
        if spared > 0 {
            spared -= 1;
            continue;
        }
        shared.fail_node(node);
    }
    let replan = plan_pinned(&workload, &marks, &shared, &PhoenixConfig::default());
    verify_pins(&replan.actions, &marks).expect("stateful pods are never deleted or migrated");
    println!(
        "after failure: {} pods planned, mongodb still on {} ({} stranded)",
        replan.target.pod_count(),
        replan
            .target
            .node_of(mongo_pod.0)
            .map(|n| n.to_string())
            .unwrap_or_else(|| "-".into()),
        replan.stranded.len(),
    );
    let (d, m, s) = replan.actions.counts();
    println!("agent actions: {d} deletes, {m} migrations, {s} starts — none touch state");
    Ok(())
}
