//! Property tests for the scenario engine's three contracts:
//!
//! * (a) every generated scenario round-trips **exactly** through the
//!   serde-shim JSON (doc equality *and* text equality),
//! * (b) every generated scenario simulates **byte-identically** whether
//!   the campaign fans out over 1 or 4 pool workers,
//! * (c) a scenario restricted to the legacy stop/start vocabulary
//!   reduces to the hand-built legacy trace **bit-for-bit**.

use phoenix_cluster::Resources;
use phoenix_core::policies::{PhoenixPolicy, ResiliencePolicy};
use phoenix_exec::Pool;
use phoenix_kubesim::run::{simulate, SimConfig};
use phoenix_kubesim::scenario::Scenario;
use phoenix_kubesim::time::SimTime;
use phoenix_scenarios::campaign::{demo_workload, run_campaign_on, CampaignConfig};
use phoenix_scenarios::generate::{generate_suite, Family, GeneratorConfig};
use phoenix_scenarios::model::{from_json, to_json, EventDoc, ScenarioDoc, SuiteDoc};
use proptest::prelude::*;

fn gen_cfg(seed: u64, nodes: u32, per_family: usize) -> GeneratorConfig {
    GeneratorConfig {
        nodes,
        node_cpu: 4.0,
        scenarios_per_family: per_family,
        apps: 2,
        seed,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// (a) Generated suites survive JSON exactly: parse(print(x)) == x
    /// and print(parse(print(x))) == print(x).
    #[test]
    fn generated_suites_round_trip_exactly(
        seed in 0u64..1000,
        nodes in 4u32..16,
    ) {
        let suite = generate_suite(&gen_cfg(seed, nodes, 2));
        let json = to_json(&suite).unwrap();
        let back = from_json(&json).unwrap();
        prop_assert_eq!(&back, &suite);
        prop_assert_eq!(to_json(&back).unwrap(), json);
    }

    /// (b) A generated scenario's campaign scores are byte-identical
    /// under a sequential and a 4-worker pool.
    #[test]
    fn generated_scenarios_simulate_thread_invariantly(
        seed in 0u64..500,
        nodes in 4u32..10,
    ) {
        let suite = generate_suite(&gen_cfg(seed, nodes, 1));
        let w = demo_workload(2);
        let policies: Vec<Box<dyn ResiliencePolicy>> =
            vec![Box::new(PhoenixPolicy::fair())];
        let cfg = CampaignConfig::default();
        let seq = run_campaign_on(&w, &suite, &policies, &cfg, &Pool::sequential()).unwrap();
        let par = run_campaign_on(&w, &suite, &policies, &cfg, &Pool::new(4)).unwrap();
        prop_assert_eq!(seq.scores.len(), par.scores.len());
        for (a, b) in seq.scores.iter().zip(&par.scores) {
            prop_assert_eq!(&a.scenario, &b.scenario);
            prop_assert_eq!(a.min_availability.to_bits(), b.min_availability.to_bits());
            prop_assert_eq!(a.final_availability.to_bits(), b.final_availability.to_bits());
            prop_assert_eq!(a.worst_c1_recovery_ms, b.worst_c1_recovery_ms);
            prop_assert_eq!(a.rto_satisfied, b.rto_satisfied);
        }
        // `same_results`, not `==`: `replan_ms_p99` is wall-clock (the
        // phoenix-obs quarantined plane) and may differ between runs.
        prop_assert_eq!(seq.scorecards.len(), par.scorecards.len());
        for (a, b) in seq.scorecards.iter().zip(&par.scorecards) {
            prop_assert!(a.same_results(b));
        }
    }

    /// (c) A doc holding only stop/start events compiles to a scenario
    /// whose simulation is bit-for-bit the legacy hand-built trace.
    #[test]
    fn stop_start_docs_reduce_to_legacy_traces(
        nodes in 3u32..8,
        fail_at in 120u64..400,
        width in 1u32..3,
        restore in proptest::bool::ANY,
    ) {
        let width = width.min(nodes - 1);
        let victims: Vec<u32> = (nodes - width..nodes).collect();
        let restore_at = fail_at + 600;
        let horizon = fail_at + 1200;

        let mut events = vec![EventDoc {
            nodes: victims.clone(),
            ..EventDoc::new(fail_at * 1000, "kubelet_stop")
        }];
        if restore {
            events.push(EventDoc {
                nodes: victims.clone(),
                ..EventDoc::new(restore_at * 1000, "kubelet_start")
            });
        }
        let doc = ScenarioDoc {
            name: "legacy".into(),
            family: "custom".into(),
            nodes,
            node_cpu: 4.0,
            node_mem: 0.0,
            horizon_ms: horizon * 1000,
            events,
        };
        // The doc also JSON round-trips (hand-written docs, not just
        // generated ones).
        let suite = SuiteDoc { version: SuiteDoc::VERSION, seed: 0, scenarios: vec![doc.clone()] };
        prop_assert_eq!(&from_json(&to_json(&suite).unwrap()).unwrap(), &suite);

        let mut legacy = Scenario::new(nodes as usize, Resources::cpu(4.0));
        legacy.kubelet_stop_at(SimTime::from_secs(fail_at), victims.clone());
        if restore {
            legacy.kubelet_start_at(SimTime::from_secs(restore_at), victims);
        }

        let w = demo_workload(2);
        let sim = SimConfig::default();
        let compiled = doc.compile().unwrap();
        let a = simulate(&w, &PhoenixPolicy::fair(), &compiled, &sim, doc.horizon());
        let b = simulate(
            &w,
            &PhoenixPolicy::fair(),
            &legacy,
            &sim,
            SimTime::from_secs(horizon),
        );
        prop_assert_eq!(a.samples, b.samples);
        prop_assert_eq!(a.milestones, b.milestones);
        prop_assert_eq!(a.plans.len(), b.plans.len());
    }
}

/// The acceptance-criteria shape: a fixed-seed campaign of every family
/// (6 ≥ 4) × 5 scenarios each runs through the pool and produces
/// identical scorecards at 1 and 4 workers.
#[test]
fn fixed_seed_campaign_four_by_five_is_pool_invariant() {
    let suite = generate_suite(&gen_cfg(42, 8, 5));
    assert!(Family::all().len() >= 4);
    assert_eq!(suite.scenarios.len(), Family::all().len() * 5);
    let w = demo_workload(3);
    let policies: Vec<Box<dyn ResiliencePolicy>> = vec![Box::new(PhoenixPolicy::fair())];
    let cfg = CampaignConfig::default();
    let seq = run_campaign_on(&w, &suite, &policies, &cfg, &Pool::sequential()).unwrap();
    let par = run_campaign_on(&w, &suite, &policies, &cfg, &Pool::new(4)).unwrap();
    // `same_results`, not `==`: `replan_ms_p99` is wall-clock (the
    // phoenix-obs quarantined plane) and may differ between runs.
    assert_eq!(seq.scorecards.len(), par.scorecards.len());
    for (a, b) in seq.scorecards.iter().zip(&par.scorecards) {
        assert!(a.same_results(b), "{} diverged across pools", a.family);
    }
    assert_eq!(seq.scores.len(), par.scores.len());
    for (a, b) in seq.scores.iter().zip(&par.scores) {
        assert!(a.same_results(b), "{} diverged across pools", a.scenario);
    }
}
