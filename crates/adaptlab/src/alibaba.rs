//! Synthetic Alibaba-2021-calibrated microservice traces.
//!
//! The real dataset contains >20 M call graphs over 7 days from which the
//! paper mines 18 application dependency graphs (10–3000 microservices).
//! This module generates equivalents matching the published statistics:
//!
//! * DG sizes follow the paper's long tail (App1 ≈ 3000 services, most
//!   apps a few dozen);
//! * 74 % of non-entry services in the top-4 apps — 82 % across all 18 —
//!   have a **single upstream caller** (§3.2);
//! * request templates (call graphs) are small and heavy-tailed: >80 % of
//!   App1's call graphs touch <10 services (Fig. 17b);
//! * template popularity is Zipf-skewed and concentrated on hub services,
//!   so a few percent of microservices serve ≈80 % of requests
//!   (Fig. 17c);
//! * the top-4 apps serve the bulk of all requests (Fig. 17a), with App1
//!   at ≈1.3 M requests.

use phoenix_dgraph::generate::{attachment_dag, single_upstream_fraction, AttachmentConfig};
use phoenix_dgraph::{DiGraph, NodeId};
use rand::Rng;

/// One call-graph template: the set of services a request touches, with
/// its request count over the trace window.
#[derive(Debug, Clone, PartialEq)]
pub struct CallTemplate {
    /// Services touched (entry first).
    pub services: Vec<NodeId>,
    /// Requests of this shape over the trace window.
    pub weight: f64,
}

/// One application mined from the (synthetic) trace.
#[derive(Debug, Clone)]
pub struct TraceApp {
    /// Display name (`App1`…`App18`, ordered by request volume).
    pub name: String,
    /// Dependency graph (payload = service index).
    pub graph: DiGraph<usize>,
    /// Call-graph templates with weights.
    pub templates: Vec<CallTemplate>,
}

impl TraceApp {
    /// Total requests across templates.
    pub fn total_requests(&self) -> f64 {
        self.templates.iter().map(|t| t.weight).sum()
    }

    /// Calls-per-minute per service over a 7-day window (the CPM input of
    /// the resource model).
    pub fn calls_per_minute(&self) -> Vec<f64> {
        let minutes = 7.0 * 24.0 * 60.0;
        let mut cpm = vec![0.0; self.graph.node_count()];
        for t in &self.templates {
            for &s in &t.services {
                cpm[s.index()] += t.weight / minutes;
            }
        }
        cpm
    }
}

/// Generator configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct AlibabaConfig {
    /// Number of applications (the paper mines 18).
    pub apps: usize,
    /// Size of the largest app's DG (the paper's App1 ≈ 3000).
    pub max_services: usize,
    /// Requests served by the most popular app (≈1.3 M in the paper).
    pub max_requests: f64,
    /// Single-upstream fraction target for the top-4 apps (≈0.74).
    pub top_single_upstream: f64,
    /// Single-upstream fraction target for the rest (≈0.97; the small apps
    /// are almost pure trees, pulling the paper's overall mix to 0.82).
    pub rest_single_upstream: f64,
    /// Zipf exponent for template popularity.
    pub template_zipf: f64,
}

impl Default for AlibabaConfig {
    fn default() -> AlibabaConfig {
        AlibabaConfig {
            apps: 18,
            max_services: 3000,
            max_requests: 1_300_000.0,
            top_single_upstream: 0.74,
            rest_single_upstream: 0.97,
            template_zipf: 1.25,
        }
    }
}

/// DG sizes: App1 gets `max`, the rest decay geometrically to ≈10.
fn app_sizes(cfg: &AlibabaConfig) -> Vec<usize> {
    let n = cfg.apps.max(1);
    let ratio = (10.0 / cfg.max_services as f64).powf(1.0 / (n.max(2) - 1) as f64);
    (0..n)
        .map(|i| {
            ((cfg.max_services as f64) * ratio.powi(i as i32))
                .round()
                .max(10.0) as usize
        })
        .collect()
}

/// Request volumes: App1 gets `max_requests`; volume decays steeply so the
/// top-4 apps dominate (Fig. 17a).
fn app_requests(cfg: &AlibabaConfig) -> Vec<f64> {
    (0..cfg.apps)
        .map(|i| cfg.max_requests / ((i + 1) as f64).powf(2.2))
        .collect()
}

/// Generates the full 18-app trace.
pub fn generate<R: Rng + ?Sized>(rng: &mut R, cfg: &AlibabaConfig) -> Vec<TraceApp> {
    let sizes = app_sizes(cfg);
    let volumes = app_requests(cfg);
    sizes
        .iter()
        .zip(&volumes)
        .enumerate()
        .map(|(i, (&size, &requests))| {
            let single_upstream = if i < 4 {
                cfg.top_single_upstream
            } else {
                cfg.rest_single_upstream
            };
            generate_app(rng, i, size, requests, single_upstream, cfg.template_zipf)
        })
        .collect()
}

fn generate_app<R: Rng + ?Sized>(
    rng: &mut R,
    index: usize,
    size: usize,
    requests: f64,
    single_upstream: f64,
    zipf: f64,
) -> TraceApp {
    let graph = attachment_dag(
        rng,
        &AttachmentConfig {
            nodes: size,
            entry_nodes: (size / 100).clamp(1, 8),
            multi_parent_prob: (1.0 - single_upstream).clamp(0.0, 1.0),
            max_extra_parents: 2,
            hub_bias: 0.7,
        },
    );
    let templates = generate_templates(rng, &graph, requests, zipf);
    TraceApp {
        name: format!("App{}", index + 1),
        graph,
        templates,
    }
}

/// Samples call-graph templates over the DG.
///
/// Template sizes are geometric (most <10 services). Walks are biased by a
/// per-app random "heat" score, so popular templates overlap heavily on a
/// small hot service set — but that set is *not* correlated with node age
/// or topological position (in the real traces, frequently-exercised
/// functionality is scattered across the graph).
fn generate_templates<R: Rng + ?Sized>(
    rng: &mut R,
    graph: &DiGraph<usize>,
    requests: f64,
    zipf: f64,
) -> Vec<CallTemplate> {
    let n = graph.node_count();
    let count = (n / 3).clamp(4, 400);
    let sources: Vec<NodeId> = graph.sources().collect();
    // Heavy-tailed per-service heat, independent of node index.
    let heat: Vec<f64> = (0..n)
        .map(|_| rng.gen_range(0.02f64..1.0).powi(3))
        .collect();
    let mut templates: Vec<Vec<NodeId>> = Vec::with_capacity(count);
    for t in 0..count {
        // Popular (low-rank) templates are small (2-5 services); deep rare
        // templates grow towards ~25 — the Fig. 17b shape.
        let ramp = t * 20 / count;
        let target = (1 + rng.gen_range(1..=4usize) + ramp).min(n.max(2) - 1);
        // Hot entry for hot templates; arbitrary entry for cold ones.
        let entry = if t < count / 4 || sources.len() == 1 {
            sources[0]
        } else {
            sources[rng.gen_range(0..sources.len())]
        };
        let mut visited = vec![entry];
        let mut member = vec![false; n];
        member[entry.index()] = true;
        'grow: while visited.len() < target {
            // Expand from a uniformly random visited node with unvisited
            // successors, preferring low-index (hub) successors.
            let mut expandable: Vec<(NodeId, Vec<NodeId>)> = Vec::new();
            for &v in &visited {
                let open: Vec<NodeId> = graph
                    .successors(v)
                    .iter()
                    .copied()
                    .filter(|s| !member[s.index()])
                    .collect();
                if !open.is_empty() {
                    expandable.push((v, open));
                }
            }
            if expandable.is_empty() {
                break 'grow;
            }
            let (_, open) = expandable.swap_remove(rng.gen_range(0..expandable.len()));
            // Heat-weighted successor pick: popular templates concentrate
            // on the same hot services.
            let total: f64 = open.iter().map(|s| heat[s.index()]).sum();
            let mut ticket = rng.gen_range(0.0..total);
            let mut next = *open.last().expect("open is non-empty");
            for &s in &open {
                if ticket < heat[s.index()] {
                    next = s;
                    break;
                }
                ticket -= heat[s.index()];
            }
            member[next.index()] = true;
            visited.push(next);
        }
        templates.push(visited);
    }
    // Zipf weights over rank; smallest templates get the top ranks, making
    // "most call graphs small" hold in the weighted distribution too.
    templates.sort_by_key(Vec::len);
    let raw: Vec<f64> = (0..templates.len())
        .map(|r| 1.0 / ((r + 1) as f64).powf(zipf))
        .collect();
    let total: f64 = raw.iter().sum();
    templates
        .into_iter()
        .zip(raw)
        .map(|(services, w)| CallTemplate {
            services,
            weight: requests * w / total,
        })
        .collect()
}

/// §3.2/Fig. 17 statistics over a generated trace.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceStats {
    /// Single-upstream fraction over the top-4 apps (paper: 0.74).
    pub single_upstream_top4: f64,
    /// Single-upstream fraction over all apps (paper: 0.82).
    pub single_upstream_all: f64,
    /// Fraction of all requests served by the top-4 apps.
    pub top4_request_share: f64,
    /// Fraction of App1 call-graph weight on templates touching <10
    /// services (paper: >0.8).
    pub app1_small_template_share: f64,
}

/// Computes the calibration statistics.
pub fn stats(apps: &[TraceApp]) -> TraceStats {
    let frac_over = |slice: &[TraceApp]| {
        let (mut singles, mut non_sources) = (0usize, 0usize);
        for a in slice {
            for n in a.graph.node_ids() {
                let d = a.graph.in_degree(n);
                if d > 0 {
                    non_sources += 1;
                    if d == 1 {
                        singles += 1;
                    }
                }
            }
        }
        if non_sources == 0 {
            0.0
        } else {
            singles as f64 / non_sources as f64
        }
    };
    let total: f64 = apps.iter().map(TraceApp::total_requests).sum();
    let top4: f64 = apps.iter().take(4).map(TraceApp::total_requests).sum();
    let app1_small = apps.first().map_or(0.0, |a| {
        let w: f64 = a
            .templates
            .iter()
            .filter(|t| t.services.len() < 10)
            .map(|t| t.weight)
            .sum();
        w / a.total_requests()
    });
    TraceStats {
        single_upstream_top4: frac_over(&apps[..apps.len().min(4)]),
        single_upstream_all: frac_over(apps),
        top4_request_share: if total > 0.0 { top4 / total } else { 0.0 },
        app1_small_template_share: app1_small,
    }
}

/// Re-export of the DG-level single-upstream measure for convenience.
pub fn app_single_upstream(app: &TraceApp) -> f64 {
    single_upstream_fraction(&app.graph)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small_cfg() -> AlibabaConfig {
        AlibabaConfig {
            apps: 8,
            max_services: 400,
            max_requests: 100_000.0,
            ..AlibabaConfig::default()
        }
    }

    #[test]
    fn generates_requested_shape() {
        let mut rng = StdRng::seed_from_u64(1);
        let apps = generate(&mut rng, &small_cfg());
        assert_eq!(apps.len(), 8);
        assert_eq!(apps[0].graph.node_count(), 400);
        assert!(apps.last().unwrap().graph.node_count() >= 10);
        // Sizes decay monotonically.
        for w in apps.windows(2) {
            assert!(w[0].graph.node_count() >= w[1].graph.node_count());
        }
    }

    #[test]
    fn templates_reach_only_existing_services_from_entries() {
        let mut rng = StdRng::seed_from_u64(2);
        let apps = generate(&mut rng, &small_cfg());
        for a in &apps {
            assert!(!a.templates.is_empty());
            for t in &a.templates {
                assert!(!t.services.is_empty());
                assert!(t.weight > 0.0);
                for &s in &t.services {
                    assert!(a.graph.contains(s));
                }
            }
        }
    }

    #[test]
    fn calibration_bands() {
        let mut rng = StdRng::seed_from_u64(3);
        let apps = generate(&mut rng, &AlibabaConfig::default());
        let st = stats(&apps);
        assert!(
            (0.65..=0.85).contains(&st.single_upstream_top4),
            "top4 single-upstream {}",
            st.single_upstream_top4
        );
        assert!(
            (0.72..=0.92).contains(&st.single_upstream_all),
            "all single-upstream {}",
            st.single_upstream_all
        );
        assert!(
            st.top4_request_share > 0.85,
            "top-4 share {}",
            st.top4_request_share
        );
        assert!(
            st.app1_small_template_share > 0.8,
            "small-template share {}",
            st.app1_small_template_share
        );
    }

    #[test]
    fn cpm_positive_on_hot_services() {
        let mut rng = StdRng::seed_from_u64(4);
        let apps = generate(&mut rng, &small_cfg());
        let cpm = apps[0].calls_per_minute();
        assert_eq!(cpm.len(), apps[0].graph.node_count());
        // The entry service of App1 is on the hottest templates.
        let entry = apps[0].graph.sources().next().unwrap();
        assert!(cpm[entry.index()] > 0.0);
        // Total CPM ≈ weighted touches / minutes.
        assert!(cpm.iter().sum::<f64>() > 0.0);
    }

    #[test]
    fn deterministic_under_seed() {
        let gen = || {
            let mut rng = StdRng::seed_from_u64(5);
            generate(&mut rng, &small_cfg())
        };
        let (a, b) = (gen(), gen());
        assert_eq!(a[0].templates, b[0].templates);
        assert_eq!(
            a[3].graph.edges().collect::<Vec<_>>(),
            b[3].graph.edges().collect::<Vec<_>>()
        );
    }
}
