//! Code-interface criticality → container separation (§3.2's Service
//! Weaver direction): the same application deployed as a monolith, one
//! container per component, and one container per criticality tier, then
//! pushed through the same capacity crunch to show what each packing lets
//! Phoenix save.
//!
//! ```sh
//! cargo run --example weaver_deploy
//! ```

use phoenix::cluster::{ClusterState, Resources};
use phoenix::core::controller::{PhoenixConfig, PhoenixController};
use phoenix::core::spec::{SpecError, Workload};
use phoenix::core::tags::Criticality;
use phoenix::core::weaver::{deploy, sheddable_fraction, Colocation, ComponentGraph};

fn main() -> Result<(), SpecError> {
    // The developer's view: annotated code components, not containers.
    let mut g = ComponentGraph::new("store");
    let checkout = g.add_component("Checkout", Criticality::C1, Resources::cpu(2.0));
    let cart = g.add_component("Cart", Criticality::C1, Resources::cpu(1.0));
    let search = g.add_component("Search", Criticality::C2, Resources::cpu(2.0));
    let recs = g.add_component("Recommend", Criticality::new(5), Resources::cpu(2.0));
    let emails = g.add_component("EmailDigest", Criticality::new(5), Resources::cpu(1.0));
    g.add_call(checkout, cart);
    g.add_call(checkout, search);
    g.add_call(search, recs);
    g.add_call(checkout, emails);

    let overhead = Resources::cpu(0.25);
    println!(
        "{:<16} {:>10} {:>12} {:>18}",
        "packing", "containers", "sheddable", "survives 4-CPU crunch"
    );
    for policy in [
        Colocation::Monolith,
        Colocation::PerComponent,
        Colocation::ByCriticality,
    ] {
        let deployment = deploy(&g, policy, overhead)?;
        // A deep crunch: 4 CPUs for an app that wants ~8.
        let controller = PhoenixController::new(
            Workload::new(vec![deployment.spec.clone()]),
            PhoenixConfig::default(),
        );
        let state = ClusterState::homogeneous(1, Resources::cpu(4.0));
        let plan = controller.plan(&state);
        let survivors: Vec<String> = plan
            .target
            .assignments()
            .map(|(pod, _, _)| {
                deployment.spec.services()[pod.service as usize]
                    .name
                    .clone()
            })
            .collect();
        println!(
            "{:<16} {:>10} {:>11.0}% {:>20}",
            policy.label(),
            deployment.spec.service_count(),
            sheddable_fraction(&deployment.spec) * 100.0,
            if survivors.is_empty() {
                "nothing".to_string()
            } else {
                survivors.join(", ")
            }
        );
    }
    println!(
        "\nThe monolith is all-or-nothing: at 4 CPUs the whole store goes dark.\n\
         Separated deployments keep the checkout path alive — code-level tags\n\
         made the app diagonally scalable without touching its logic."
    );
    Ok(())
}
