//! Integration: the AdaptLab pipeline — trace generation → tagging →
//! environment fill → failure sweep → metrics — holds its cross-crate
//! invariants.

use phoenix::adaptlab::alibaba::AlibabaConfig;
use phoenix::adaptlab::metrics::{critical_service_availability, evaluate, revenue};
use phoenix::adaptlab::runner::{failure_sweep, point, SweepConfig};
use phoenix::adaptlab::scenario::{build_env, EnvConfig};
use phoenix::adaptlab::tagging::TaggingScheme;
use phoenix::cluster::failure::fail_fraction;
use phoenix::core::policies::{standard_roster, PhoenixPolicy, ResiliencePolicy};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn cfg() -> EnvConfig {
    EnvConfig {
        nodes: 80,
        node_capacity: 64.0,
        target_utilization: 0.7,
        tagging: TaggingScheme::ServiceLevel { percentile: 0.9 },
        alibaba: AlibabaConfig {
            apps: 6,
            max_services: 150,
            max_requests: 80_000.0,
            ..AlibabaConfig::default()
        },
        seed: 77,
        ..EnvConfig::default()
    }
}

#[test]
fn baseline_env_is_fully_available() {
    let env = build_env(&cfg());
    assert_eq!(
        critical_service_availability(&env.workload, &env.baseline),
        1.0
    );
    let m = evaluate(
        &env.workload,
        &env.baseline,
        revenue(&env.workload, &env.baseline),
        0.0,
    );
    assert!((m.revenue - 1.0).abs() < 1e-9);
    assert!(m.utilization <= 0.7 + 1e-9);
}

#[test]
fn metrics_bounded_and_consistent_across_policies() {
    let env = build_env(&cfg());
    let base_rev = revenue(&env.workload, &env.baseline);
    let mut failed = env.baseline.clone();
    let mut rng = StdRng::seed_from_u64(7);
    fail_fraction(&mut failed, 0.5, &mut rng);
    for policy in standard_roster() {
        let plan = policy.plan(&env.workload, &failed);
        let m = evaluate(&env.workload, &plan.target, base_rev, 0.0);
        assert!((0.0..=1.0).contains(&m.availability), "{}", policy.name());
        assert!((0.0..=1.0 + 1e-9).contains(&m.revenue), "{}", policy.name());
        assert!(m.utilization <= 1.0 + 1e-9, "{}", policy.name());
        assert!(m.fairness_pos >= 0.0 && m.fairness_neg >= 0.0);
    }
}

#[test]
fn sweep_is_deterministic() {
    let sweep = SweepConfig {
        failure_fracs: vec![0.4],
        trials: 2,
        ..SweepConfig::default()
    };
    let roster: Vec<Box<dyn ResiliencePolicy>> = vec![
        Box::new(PhoenixPolicy::fair()),
        Box::new(PhoenixPolicy::cost()),
    ];
    let a = failure_sweep(&cfg(), &sweep, &roster);
    let b = failure_sweep(&cfg(), &sweep, &roster);
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.policy, y.policy);
        // Everything except wall-clock timing must match exactly.
        assert_eq!(x.metrics.availability, y.metrics.availability);
        assert_eq!(x.metrics.revenue, y.metrics.revenue);
        assert_eq!(x.metrics.fairness_pos, y.metrics.fairness_pos);
        assert_eq!(x.metrics.fairness_neg, y.metrics.fairness_neg);
        assert_eq!(x.metrics.utilization, y.metrics.utilization);
    }
}

#[test]
fn phoenix_dominates_default_across_the_sweep() {
    let sweep = SweepConfig {
        failure_fracs: vec![0.3, 0.6],
        trials: 2,
        ..SweepConfig::default()
    };
    let points = failure_sweep(&cfg(), &sweep, &standard_roster());
    for &frac in &sweep.failure_fracs {
        let phx = point(&points, "PhoenixFair", frac)
            .unwrap()
            .metrics
            .availability;
        let dfl = point(&points, "Default", frac)
            .unwrap()
            .metrics
            .availability;
        assert!(phx >= dfl, "frac {frac}: {phx} < {dfl}");
    }
}

#[test]
fn tagging_schemes_change_c1_sets_but_pipeline_survives() {
    for tagging in [
        TaggingScheme::ServiceLevel { percentile: 0.5 },
        TaggingScheme::FrequencyBased { percentile: 0.9 },
    ] {
        let env = build_env(&EnvConfig { tagging, ..cfg() });
        assert!(env.workload.app_count() > 0, "{tagging:?}");
        assert_eq!(
            critical_service_availability(&env.workload, &env.baseline),
            1.0,
            "{tagging:?}"
        );
    }
}
