//! Property-based tests for the graph substrate.

use phoenix_dgraph::generate::{attachment_dag, AttachmentConfig};
use phoenix_dgraph::topo::{condensation, depth_levels, is_dag, tarjan_scc, topo_sort};
use phoenix_dgraph::traversal::{ancestors, covers_all, descendants, reachable_from, Dfs};
use phoenix_dgraph::{DiGraph, NodeId};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// An arbitrary digraph as (node count, edge list); edges may collide or
/// self-loop — builders must cope.
fn arb_graph() -> impl Strategy<Value = DiGraph<u32>> {
    (1usize..40).prop_flat_map(|n| {
        let edges = proptest::collection::vec((0..n, 0..n), 0..n * 3);
        edges.prop_map(move |es| {
            let mut g: DiGraph<u32> = (0..n as u32).collect();
            for (f, t) in es {
                if f != t {
                    let _ = g.add_edge(NodeId::from_index(f), NodeId::from_index(t));
                }
            }
            g
        })
    })
}

fn arb_dag() -> impl Strategy<Value = DiGraph<u32>> {
    // Edges forced forward (f < t) → always acyclic.
    (2usize..40).prop_flat_map(|n| {
        let edges = proptest::collection::vec((0..n, 0..n), 0..n * 3);
        edges.prop_map(move |es| {
            let mut g: DiGraph<u32> = (0..n as u32).collect();
            for (a, b) in es {
                if a != b {
                    let (f, t) = (a.min(b), a.max(b));
                    let _ = g.add_edge(NodeId::from_index(f), NodeId::from_index(t));
                }
            }
            g
        })
    })
}

proptest! {
    #[test]
    fn topo_order_respects_all_edges(g in arb_dag()) {
        let order = topo_sort(&g).expect("forward-edge graphs are DAGs");
        prop_assert_eq!(order.len(), g.node_count());
        let mut pos = vec![0usize; g.node_count()];
        for (i, n) in order.iter().enumerate() { pos[n.index()] = i; }
        for (u, v) in g.edges() {
            prop_assert!(pos[u.index()] < pos[v.index()]);
        }
    }

    #[test]
    fn dfs_visits_exactly_reachable(g in arb_graph()) {
        let start = NodeId::from_index(0);
        let visited: Vec<NodeId> = Dfs::new(&g, [start]).collect();
        let mark = reachable_from(&g, [start]);
        prop_assert_eq!(visited.len(), mark.iter().filter(|&&b| b).count());
        for n in &visited { prop_assert!(mark[n.index()]); }
        // No duplicates.
        let mut sorted: Vec<_> = visited.iter().map(|n| n.index()).collect();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), visited.len());
    }

    #[test]
    fn ancestors_descendants_are_dual(g in arb_dag()) {
        for n in g.node_ids() {
            for d in descendants(&g, n) {
                prop_assert!(ancestors(&g, d).contains(&n),
                    "{} descendant of {} but not dual", d, n);
            }
        }
    }

    #[test]
    fn scc_partition_covers_all_nodes(g in arb_graph()) {
        let sccs = tarjan_scc(&g);
        let mut seen = vec![false; g.node_count()];
        for comp in &sccs {
            for &n in comp {
                prop_assert!(!seen[n.index()], "node in two SCCs");
                seen[n.index()] = true;
            }
        }
        prop_assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn condensation_always_acyclic(g in arb_graph()) {
        let (cond, comp_of) = condensation(&g);
        prop_assert!(is_dag(&cond));
        prop_assert_eq!(comp_of.len(), g.node_count());
        // Membership is consistent.
        for (cid, members) in cond.nodes() {
            for &m in members {
                prop_assert_eq!(comp_of[m.index()], cid);
            }
        }
    }

    #[test]
    fn depth_levels_monotone_along_edges(g in arb_dag()) {
        let depth = depth_levels(&g).unwrap();
        for (u, v) in g.edges() {
            prop_assert!(depth[v.index()] > depth[u.index()]);
        }
    }

    #[test]
    fn generated_dags_fully_reachable(seed in 0u64..500, n in 2usize..150) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = attachment_dag(&mut rng, &AttachmentConfig {
            nodes: n,
            entry_nodes: 1 + (n / 50),
            ..AttachmentConfig::default()
        });
        prop_assert!(is_dag(&g));
        prop_assert!(covers_all(&g, g.sources()));
    }
}
