//! Depth-first and breadth-first traversal, plus reachability queries.
//!
//! The Phoenix planner walks dependency graphs from their entry services
//! towards the leaves; AdaptLab's tagging schemes need ancestor/descendant
//! sets to propagate criticality along call paths. Both are served here.

use std::collections::VecDeque;

use crate::{DiGraph, NodeId};

/// Iterative depth-first traversal from a set of start nodes.
///
/// Nodes are yielded in *pre-order*; already-visited nodes are skipped, so a
/// node reachable from two starts is yielded once. Successors are pushed in
/// reverse adjacency order so that the first-added edge is explored first,
/// giving deterministic orderings.
///
/// # Examples
///
/// ```
/// use phoenix_dgraph::{DiGraph, traversal::Dfs};
///
/// let g = DiGraph::from_parts(["r", "a", "b"], [(0, 1), (0, 2)])?;
/// let order: Vec<_> = Dfs::new(&g, g.sources()).map(|n| g[n]).collect();
/// assert_eq!(order, vec!["r", "a", "b"]);
/// # Ok::<(), phoenix_dgraph::GraphError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Dfs<'g, N> {
    graph: &'g DiGraph<N>,
    stack: Vec<NodeId>,
    visited: Vec<bool>,
}

impl<'g, N> Dfs<'g, N> {
    /// Creates a DFS over `graph` starting from `starts` (explored in order).
    pub fn new(graph: &'g DiGraph<N>, starts: impl IntoIterator<Item = NodeId>) -> Dfs<'g, N> {
        let mut stack: Vec<NodeId> = starts.into_iter().collect();
        stack.reverse();
        Dfs {
            graph,
            stack,
            visited: vec![false; graph.node_count()],
        }
    }
}

impl<N> Iterator for Dfs<'_, N> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        while let Some(n) = self.stack.pop() {
            if !self.visited[n.index()] {
                self.visited[n.index()] = true;
                for &succ in self.graph.successors(n).iter().rev() {
                    if !self.visited[succ.index()] {
                        self.stack.push(succ);
                    }
                }
                return Some(n);
            }
        }
        None
    }
}

/// Breadth-first traversal from a set of start nodes.
///
/// Yields nodes level by level; each node appears once.
#[derive(Debug, Clone)]
pub struct Bfs<'g, N> {
    graph: &'g DiGraph<N>,
    queue: VecDeque<NodeId>,
    visited: Vec<bool>,
}

impl<'g, N> Bfs<'g, N> {
    /// Creates a BFS over `graph` starting from `starts`.
    pub fn new(graph: &'g DiGraph<N>, starts: impl IntoIterator<Item = NodeId>) -> Bfs<'g, N> {
        let mut visited = vec![false; graph.node_count()];
        let mut queue = VecDeque::new();
        for s in starts {
            if !visited[s.index()] {
                visited[s.index()] = true;
                queue.push_back(s);
            }
        }
        Bfs {
            graph,
            queue,
            visited,
        }
    }
}

impl<N> Iterator for Bfs<'_, N> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        let n = self.queue.pop_front()?;
        for &succ in self.graph.successors(n) {
            if !self.visited[succ.index()] {
                self.visited[succ.index()] = true;
                self.queue.push_back(succ);
            }
        }
        Some(n)
    }
}

/// Returns a membership vector marking every node reachable from `starts`
/// (the starts themselves included).
pub fn reachable_from<N>(
    graph: &DiGraph<N>,
    starts: impl IntoIterator<Item = NodeId>,
) -> Vec<bool> {
    let mut mark = vec![false; graph.node_count()];
    for n in Dfs::new(graph, starts) {
        mark[n.index()] = true;
    }
    mark
}

/// Descendants of `node`: every node reachable from it, excluding itself
/// unless it lies on a cycle back to itself.
pub fn descendants<N>(graph: &DiGraph<N>, node: NodeId) -> Vec<NodeId> {
    Dfs::new(graph, graph.successors(node).iter().copied())
        .filter(|&n| n != node)
        .collect()
}

/// Ancestors of `node`: every node from which `node` is reachable.
///
/// Computed as a DFS over reversed adjacency without materializing the
/// reversed graph.
pub fn ancestors<N>(graph: &DiGraph<N>, node: NodeId) -> Vec<NodeId> {
    let mut visited = vec![false; graph.node_count()];
    let mut stack: Vec<NodeId> = graph.predecessors(node).to_vec();
    let mut out = Vec::new();
    while let Some(n) = stack.pop() {
        if n != node && !visited[n.index()] {
            visited[n.index()] = true;
            out.push(n);
            stack.extend_from_slice(graph.predecessors(n));
        }
    }
    out
}

/// True when every node of the graph is reachable from `starts`.
pub fn covers_all<N>(graph: &DiGraph<N>, starts: impl IntoIterator<Item = NodeId>) -> bool {
    reachable_from(graph, starts).iter().all(|&v| v)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// r -> a -> c, r -> b, b -> c, isolated d
    fn sample() -> (DiGraph<&'static str>, [NodeId; 5]) {
        let mut g = DiGraph::new();
        let r = g.add_node("r");
        let a = g.add_node("a");
        let b = g.add_node("b");
        let c = g.add_node("c");
        let d = g.add_node("d");
        g.add_edge(r, a).unwrap();
        g.add_edge(r, b).unwrap();
        g.add_edge(a, c).unwrap();
        g.add_edge(b, c).unwrap();
        (g, [r, a, b, c, d])
    }

    #[test]
    fn dfs_preorder_deterministic() {
        let (g, [r, a, b, c, _]) = sample();
        let order: Vec<_> = Dfs::new(&g, [r]).collect();
        assert_eq!(order, vec![r, a, c, b]);
    }

    #[test]
    fn dfs_multiple_starts_no_duplicates() {
        let (g, [r, _, _, c, d]) = sample();
        let order: Vec<_> = Dfs::new(&g, [d, r, c]).collect();
        assert_eq!(order.len(), 5);
        assert_eq!(order[0], d);
    }

    #[test]
    fn bfs_level_order() {
        let (g, [r, a, b, c, _]) = sample();
        let order: Vec<_> = Bfs::new(&g, [r]).collect();
        assert_eq!(order, vec![r, a, b, c]);
    }

    #[test]
    fn reachability_marks() {
        let (g, [r, _, _, _, d]) = sample();
        let m = reachable_from(&g, [r]);
        assert_eq!(m, vec![true, true, true, true, false]);
        assert!(!covers_all(&g, [r]));
        assert!(covers_all(&g, [r, d]));
    }

    #[test]
    fn descendants_and_ancestors() {
        let (g, [r, a, b, c, d]) = sample();
        let mut desc = descendants(&g, r);
        desc.sort();
        assert_eq!(desc, vec![a, b, c]);
        let mut anc = ancestors(&g, c);
        anc.sort();
        assert_eq!(anc, vec![r, a, b]);
        assert!(ancestors(&g, d).is_empty());
        assert!(descendants(&g, d).is_empty());
    }

    #[test]
    fn traversal_on_cycle_terminates() {
        // x -> y -> z -> x
        let g = DiGraph::from_parts(["x", "y", "z"], [(0, 1), (1, 2), (2, 0)]).unwrap();
        let n0 = NodeId::from_index(0);
        assert_eq!(Dfs::new(&g, [n0]).count(), 3);
        assert_eq!(Bfs::new(&g, [n0]).count(), 3);
        // On a cycle, a node is its own ancestor-set member's descendant.
        assert_eq!(descendants(&g, n0).len(), 2);
        assert_eq!(ancestors(&g, n0).len(), 2);
    }
}
