//! Depth-first branch-and-bound over binary variables.
//!
//! This is the stand-in for Gurobi's MIP solver in the `LPFair`/`LPCost`
//! baselines. Nodes solve the bounded-variable simplex relaxation; branching
//! picks the most fractional binary, exploring the "on" branch first (the
//! paper's models activate microservices, so 1-branches tend to reach good
//! incumbents quickly). Limits return the best incumbent with a
//! [`Status::FeasibleLimit`] marker rather than failing, mirroring a MIP
//! solver's time-limited behaviour in Fig. 8b.

use std::time::Instant;

use crate::expr::VarId;
use crate::model::{LimitKind, LpError, Model, Sense, Solution, SolveOptions, Status};
use crate::simplex::{solve_relaxation, Relaxed};

struct Node {
    /// `(binary var index, fixed value)` decisions along this branch.
    fixes: Vec<(usize, f64)>,
}

pub(crate) fn solve_milp(
    model: &Model,
    binaries: &[VarId],
    opts: &SolveOptions,
) -> Result<Solution, LpError> {
    let sign = match model.sense {
        Sense::Maximize => 1.0,
        Sense::Minimize => -1.0,
    };
    let obj = model.objective.clone() * sign;
    let base_lb: Vec<f64> = model.vars.iter().map(|v| v.lb).collect();
    let base_ub: Vec<f64> = model.vars.iter().map(|v| v.ub).collect();
    let deadline = opts.time_limit.map(|d| Instant::now() + d);

    let mut incumbent: Option<(f64, Vec<f64>)> = None;
    let mut best_bound = f64::INFINITY;
    let mut root_bound: Option<f64> = None;
    let mut nodes: u64 = 0;
    let mut iterations: u64 = 0;
    let mut limit_hit: Option<LimitKind> = None;

    let mut stack = vec![Node { fixes: Vec::new() }];
    while let Some(node) = stack.pop() {
        if nodes >= opts.max_nodes {
            limit_hit = Some(LimitKind::Nodes);
            break;
        }
        if let Some(dl) = deadline {
            if Instant::now() >= dl {
                limit_hit = Some(LimitKind::Time);
                break;
            }
        }
        nodes += 1;

        let mut lb = base_lb.clone();
        let mut ub = base_ub.clone();
        for &(j, v) in &node.fixes {
            lb[j] = v;
            ub[j] = v;
        }
        let relaxed = solve_relaxation(model, &lb, &ub, &obj, opts.max_simplex_iters, deadline)?;
        let (relax_obj, values) = match relaxed {
            Relaxed::Optimal {
                objective,
                values,
                iterations: it,
            } => {
                iterations += it;
                (objective, values)
            }
            Relaxed::Infeasible { iterations: it } => {
                iterations += it;
                continue;
            }
            Relaxed::Unbounded { iterations: it } => {
                iterations += it;
                if node.fixes.is_empty() {
                    return Err(LpError::Unbounded);
                }
                // A bounded-binary subproblem cannot truly be unbounded if
                // the root was bounded; treat as un-prunable and skip.
                continue;
            }
            Relaxed::Limit {
                feasible,
                iterations: it,
                kind,
            } => {
                iterations += it;
                limit_hit = Some(kind);
                // Keep a feasible-and-integral point if we lucked into one.
                if let Some((o, v)) = feasible {
                    if is_integral(&v, binaries, opts.int_tol)
                        && incumbent.as_ref().is_none_or(|(bo, _)| o > *bo)
                    {
                        incumbent = Some((o, v));
                    }
                }
                break;
            }
        };
        if node.fixes.is_empty() {
            root_bound = Some(relax_obj);
            // Root diving heuristic: grab an early incumbent by repeatedly
            // fixing the most fractional binary and re-solving. Without it,
            // deep instances can exhaust the budget before any feasible
            // point appears.
            if opts.dive_heuristic {
                if let Some((obj_d, vals_d, it_d)) = dive(
                    model, &base_lb, &base_ub, &obj, binaries, &values, opts, deadline,
                ) {
                    iterations += it_d;
                    if incumbent.as_ref().is_none_or(|(o, _)| obj_d > *o) {
                        incumbent = Some((obj_d, vals_d));
                    }
                }
            }
        }
        if let Some((inc_obj, _)) = &incumbent {
            if relax_obj <= *inc_obj + 1e-9 {
                continue; // pruned by bound
            }
        }
        // Most fractional binary.
        let mut branch: Option<(usize, f64)> = None;
        for b in binaries {
            let j = b.index();
            let v = values[j];
            let frac = (v - v.round()).abs();
            if frac > opts.int_tol {
                let dist_to_half = (v - v.floor() - 0.5).abs();
                match branch {
                    Some((_, best)) if best <= dist_to_half => {}
                    _ => branch = Some((j, dist_to_half)),
                }
            }
        }
        match branch {
            None => {
                // Integral: new incumbent (it beat the pruning test above).
                incumbent = Some((relax_obj, values));
            }
            Some((j, _)) => {
                let mut zero = node.fixes.clone();
                zero.push((j, 0.0));
                let mut one = node.fixes;
                one.push((j, 1.0));
                stack.push(Node { fixes: zero });
                stack.push(Node { fixes: one }); // explored first
            }
        }
    }

    if limit_hit.is_none() {
        // Search exhausted: incumbent (if any) is optimal.
        best_bound = incumbent.as_ref().map_or(f64::NEG_INFINITY, |(o, _)| *o);
    } else if let Some(rb) = root_bound {
        best_bound = rb;
    }

    match (incumbent, limit_hit) {
        (Some((objective, values)), None) => Ok(Solution {
            status: Status::Optimal,
            objective: sign * objective,
            bound: sign * best_bound,
            nodes,
            iterations,
            values,
        }),
        (Some((objective, values)), Some(kind)) => Ok(Solution {
            status: Status::FeasibleLimit(kind),
            objective: sign * objective,
            bound: sign * best_bound,
            nodes,
            iterations,
            values,
        }),
        (None, None) => Err(LpError::Infeasible),
        (None, Some(kind)) => Err(LpError::LimitReached(kind)),
    }
}

/// Dive from a relaxation point: repeatedly fix the most fractional binary
/// to its nearest integer (flipping once on infeasibility) and re-solve.
/// Returns an integral feasible point when the dive bottoms out.
#[allow(clippy::too_many_arguments)]
fn dive(
    model: &Model,
    base_lb: &[f64],
    base_ub: &[f64],
    obj: &crate::expr::LinExpr,
    binaries: &[VarId],
    root_values: &[f64],
    opts: &SolveOptions,
    deadline: Option<Instant>,
) -> Option<(f64, Vec<f64>, u64)> {
    let mut lb = base_lb.to_vec();
    let mut ub = base_ub.to_vec();
    let mut values = root_values.to_vec();
    let mut objective = f64::NAN;
    let mut iterations = 0u64;
    for _ in 0..binaries.len().min(4096) {
        if let Some(dl) = deadline {
            if Instant::now() >= dl {
                return None;
            }
        }
        // Most fractional unfixed binary.
        let mut pick: Option<(usize, f64)> = None;
        for b in binaries {
            let j = b.index();
            let v = values[j];
            let frac = (v - v.round()).abs();
            if frac > opts.int_tol {
                let dist = (v - v.floor() - 0.5).abs();
                match pick {
                    Some((_, best)) if best <= dist => {}
                    _ => pick = Some((j, dist)),
                }
            }
        }
        let Some((j, _)) = pick else {
            // Integral: verify and return.
            return is_integral(&values, binaries, opts.int_tol).then_some((
                objective_or(model, obj, &values, objective),
                values,
                iterations,
            ));
        };
        let rounded = values[j].round().clamp(0.0, 1.0);
        let mut solved = false;
        for attempt in [rounded, 1.0 - rounded] {
            lb[j] = attempt;
            ub[j] = attempt;
            match solve_relaxation(model, &lb, &ub, obj, opts.max_simplex_iters, deadline) {
                Ok(Relaxed::Optimal {
                    objective: o,
                    values: v,
                    iterations: it,
                }) => {
                    iterations += it;
                    objective = o;
                    values = v;
                    solved = true;
                    break;
                }
                Ok(Relaxed::Infeasible { iterations: it }) => {
                    iterations += it;
                    continue; // flip and retry
                }
                _ => return None,
            }
        }
        if !solved {
            return None;
        }
    }
    None
}

/// The dive tracks the objective of the last solved LP; fall back to a
/// direct evaluation when it never re-solved (already-integral roots).
fn objective_or(_model: &Model, obj: &crate::expr::LinExpr, values: &[f64], tracked: f64) -> f64 {
    if tracked.is_nan() {
        obj.eval(values)
    } else {
        tracked
    }
}

fn is_integral(values: &[f64], binaries: &[VarId], tol: f64) -> bool {
    binaries
        .iter()
        .all(|b| (values[b.index()] - values[b.index()].round()).abs() <= tol)
}
