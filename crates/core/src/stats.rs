//! Small shared statistics helpers (percentiles for the latency models).
//!
//! The implementation lives in `phoenix_obs::stats` — the observability
//! substrate is the one home for nearest-rank percentile math, so the
//! latency tables in `phoenix-apps`, the campaign `replan_ms_p99`
//! scoring, the criterion shim's median, and the wall-clock histograms
//! all agree on the `⌈q·n⌉` convention. This module re-exports it under
//! the historical `phoenix_core::stats` path.
//!
//! Percentiles use the **nearest-rank** definition: the p-th percentile of
//! `n` sorted samples is the `⌈p·n⌉`-th smallest (1-based). This is the
//! convention monitoring stacks report, and it is exact for the tiny
//! sample counts the simulators produce early in a run — a naive
//! `(p * n) as usize` index over-reads by one rank (e.g. the p95 of 20
//! samples must be the 19th value, not the 20th) and silently degenerates
//! to the maximum for small `n`.

pub use phoenix_obs::stats::{percentile, percentile_index, percentile_u64};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_sample_is_every_percentile() {
        for q in [0.0, 0.5, 0.95, 0.99, 1.0] {
            assert_eq!(percentile_index(1, q), 0, "q={q}");
            assert_eq!(percentile(&[7.5], q), 7.5);
        }
    }

    #[test]
    fn two_samples() {
        // Nearest rank: p50 of two samples is the *first* (⌈0.5·2⌉ = 1).
        assert_eq!(percentile_index(2, 0.5), 0);
        assert_eq!(percentile_index(2, 0.51), 1);
        assert_eq!(percentile_index(2, 0.95), 1);
        assert_eq!(percentile_index(2, 0.99), 1);
        assert_eq!(percentile(&[1.0, 2.0], 0.5), 1.0);
        assert_eq!(percentile(&[1.0, 2.0], 0.99), 2.0);
    }

    #[test]
    fn three_samples() {
        assert_eq!(percentile_index(3, 0.5), 1); // ⌈1.5⌉ = 2nd
        assert_eq!(percentile_index(3, 0.95), 2); // ⌈2.85⌉ = 3rd
        assert_eq!(percentile_index(3, 0.99), 2);
        assert_eq!(percentile(&[1.0, 2.0, 3.0], 0.5), 2.0);
    }

    #[test]
    fn large_n_is_not_off_by_one() {
        // p95 of 20 samples: ⌈19⌉ = 19th smallest = index 18 — the naive
        // `(0.95 * 20) as usize = 19` read the maximum instead.
        assert_eq!(percentile_index(20, 0.95), 18);
        assert_eq!(percentile_index(20_000, 0.95), 18_999);
        assert_eq!(percentile_index(100, 0.5), 49);
    }

    #[test]
    fn extremes_clamp() {
        assert_eq!(percentile_index(10, 0.0), 0);
        assert_eq!(percentile_index(10, 1.0), 9);
        assert_eq!(percentile_index(10, -3.0), 0);
        assert_eq!(percentile_index(10, 2.0), 9);
    }

    #[test]
    fn u64_variant_shares_the_convention() {
        assert_eq!(percentile_u64(&[10, 20, 30, 50], 0.5), 20);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_panics() {
        percentile(&[], 0.5);
    }
}
