//! Criticality tagging schemes for trace-driven apps (§6.2, *Criticality
//! Tagging*).
//!
//! The traces carry no criticality information, so the paper derives tags
//! two ways, each at the 50th and 90th request percentile:
//!
//! * **Service-level**: rank whole *services* (call-graph templates — "a
//!   set of microservices that together offer a useful functionality") by
//!   popularity; every microservice of the templates covering the target
//!   percentile becomes `C1`;
//! * **Frequency-based**: solve the Appendix-G coverage problem for the
//!   *minimal* microservice set serving the target percentile; that set
//!   becomes `C1`.
//!
//! Remaining microservices are bucketed `C2…C10` by decreasing call
//! volume. In both schemes a small random sample of infrequently-invoked
//! services is promoted to `C1` to stand in for critical background jobs
//! (garbage collection and the like).

use phoenix_core::tags::Criticality;
use phoenix_lp::coverage::{greedy_min_items_for_target, CoverageInstance};
use rand::Rng;

use crate::alibaba::TraceApp;

/// Which tagging scheme to apply.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TaggingScheme {
    /// Template-popularity prefix (§6.2 "service-level tagging").
    ServiceLevel {
        /// Request percentile to cover with `C1` (0.5 or 0.9).
        percentile: f64,
    },
    /// Minimal coverage set via the Appendix-G LP/greedy.
    FrequencyBased {
        /// Request percentile to cover with `C1` (0.5 or 0.9).
        percentile: f64,
    },
}

impl TaggingScheme {
    /// Report label (`Service-Level-P90` etc.).
    pub fn label(self) -> String {
        match self {
            TaggingScheme::ServiceLevel { percentile } => {
                format!("Service-Level-P{:.0}", percentile * 100.0)
            }
            TaggingScheme::FrequencyBased { percentile } => {
                format!("Freq-Based-P{:.0}", percentile * 100.0)
            }
        }
    }
}

/// Fraction of cold services promoted to `C1` as background-critical.
const BACKGROUND_CRITICAL_FRACTION: f64 = 0.01;

/// Number of criticality buckets below `C1`.
const LOW_BUCKETS: u8 = 9; // C2..=C10

/// Assigns a criticality per service of `app`.
pub fn assign<R: Rng + ?Sized>(
    scheme: TaggingScheme,
    app: &TraceApp,
    rng: &mut R,
) -> Vec<Criticality> {
    let n = app.graph.node_count();
    let c1: Vec<bool> = match scheme {
        TaggingScheme::ServiceLevel { percentile } => service_level_c1(app, percentile),
        TaggingScheme::FrequencyBased { percentile } => frequency_based_c1(app, percentile),
    };
    // Bucket the rest C2..C10 by decreasing CPM (deciles of the non-C1
    // population).
    let cpm = app.calls_per_minute();
    let mut rest: Vec<usize> = (0..n).filter(|&i| !c1[i]).collect();
    rest.sort_by(|&a, &b| cpm[b].total_cmp(&cpm[a]));
    let mut tags = vec![Criticality::C1; n];
    let per_bucket = (rest.len() as f64 / f64::from(LOW_BUCKETS)).ceil().max(1.0) as usize;
    for (pos, &svc) in rest.iter().enumerate() {
        let bucket = (pos / per_bucket) as u8;
        tags[svc] = Criticality::new(2 + bucket.min(LOW_BUCKETS - 1));
    }
    // Promote a sprinkle of cold services to C1 (critical background jobs).
    for i in 0..n {
        if !c1[i] && rng.gen_bool(BACKGROUND_CRITICAL_FRACTION) {
            tags[i] = Criticality::C1;
        }
    }
    tags
}

/// Service-level: most popular templates until `percentile` of requests.
fn service_level_c1(app: &TraceApp, percentile: f64) -> Vec<bool> {
    let total = app.total_requests();
    let mut order: Vec<usize> = (0..app.templates.len()).collect();
    order.sort_by(|&a, &b| app.templates[b].weight.total_cmp(&app.templates[a].weight));
    let mut c1 = vec![false; app.graph.node_count()];
    let mut covered = 0.0;
    for t in order {
        if covered >= total * percentile.clamp(0.0, 1.0) {
            break;
        }
        covered += app.templates[t].weight;
        for &s in &app.templates[t].services {
            c1[s.index()] = true;
        }
    }
    c1
}

/// Frequency-based: Appendix-G minimal coverage set (greedy at scale).
fn frequency_based_c1(app: &TraceApp, percentile: f64) -> Vec<bool> {
    let inst = CoverageInstance::new(
        app.graph.node_count(),
        app.templates
            .iter()
            .map(|t| t.services.iter().map(|s| s.index()).collect())
            .collect(),
        app.templates.iter().map(|t| t.weight).collect(),
    );
    let result = greedy_min_items_for_target(&inst, percentile.clamp(0.0, 1.0));
    let mut c1 = vec![false; app.graph.node_count()];
    for i in result.chosen {
        c1[i] = true;
    }
    c1
}

/// Services with exactly one upstream caller — the §3.2 "stub"
/// microservices (74 % of the top-4 apps, 82 % overall in the Alibaba
/// analysis).
pub fn single_upstream_stubs(app: &TraceApp) -> Vec<bool> {
    app.graph
        .node_ids()
        .map(|n| app.graph.in_degree(n) == 1)
        .collect()
}

/// Applies the §3.2 rule — "single-upstream stub microservices can be
/// safely degraded if marked as low criticality by the upstream caller" —
/// as a post-pass over any tagging: a stub is never more critical than
/// its only caller, so its level is raised (made less critical) to the
/// caller's when the caller is less critical.
///
/// Callers are processed in topological order where possible, so chains
/// of stubs inherit transitively; cycles (never single-upstream chains in
/// practice) fall back to one non-transitive pass.
pub fn inherit_stub_tags(app: &TraceApp, tags: &[Criticality]) -> Vec<Criticality> {
    let mut out = tags.to_vec();
    let stubs = single_upstream_stubs(app);
    let order: Vec<usize> = match phoenix_dgraph::topo::topo_sort(&app.graph) {
        Ok(order) => order.into_iter().map(|n| n.index()).collect(),
        Err(_) => (0..app.graph.node_count()).collect(),
    };
    for i in order {
        let node = phoenix_dgraph::NodeId::from_index(i);
        if !stubs[i] {
            continue;
        }
        let caller = app.graph.predecessors(node)[0];
        let caller_tag = out[caller.index()];
        if !out[i].is_at_least_as_critical_as(caller_tag) {
            continue; // already at or below the caller's criticality
        }
        if caller_tag != out[i] {
            out[i] = caller_tag;
        }
    }
    out
}

/// Request-weight fraction served when only `C1` services are up — the
/// design intent of both schemes (≥ the percentile).
pub fn c1_coverage(app: &TraceApp, tags: &[Criticality]) -> f64 {
    let total = app.total_requests();
    if total <= 0.0 {
        return 0.0;
    }
    let served: f64 = app
        .templates
        .iter()
        .filter(|t| {
            t.services
                .iter()
                .all(|s| tags[s.index()] == Criticality::C1)
        })
        .map(|t| t.weight)
        .sum();
    served / total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alibaba::{generate, AlibabaConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn app() -> TraceApp {
        let mut rng = StdRng::seed_from_u64(11);
        generate(
            &mut rng,
            &AlibabaConfig {
                apps: 1,
                max_services: 250,
                max_requests: 150_000.0,
                ..AlibabaConfig::default()
            },
        )
        .remove(0)
    }

    #[test]
    fn both_schemes_hit_their_percentile() {
        let a = app();
        let mut rng = StdRng::seed_from_u64(1);
        for scheme in [
            TaggingScheme::ServiceLevel { percentile: 0.5 },
            TaggingScheme::ServiceLevel { percentile: 0.9 },
            TaggingScheme::FrequencyBased { percentile: 0.5 },
            TaggingScheme::FrequencyBased { percentile: 0.9 },
        ] {
            let tags = assign(scheme, &a, &mut rng);
            assert_eq!(tags.len(), a.graph.node_count());
            let cov = c1_coverage(&a, &tags);
            let target = match scheme {
                TaggingScheme::ServiceLevel { percentile }
                | TaggingScheme::FrequencyBased { percentile } => percentile,
            };
            assert!(
                cov >= target - 1e-9,
                "{}: coverage {cov} < {target}",
                scheme.label()
            );
        }
    }

    #[test]
    fn frequency_based_uses_fewer_c1_services() {
        let a = app();
        let mut rng = StdRng::seed_from_u64(2);
        let count = |tags: &[Criticality]| tags.iter().filter(|&&t| t == Criticality::C1).count();
        let sl = assign(
            TaggingScheme::ServiceLevel { percentile: 0.9 },
            &a,
            &mut rng,
        );
        let mut rng = StdRng::seed_from_u64(2);
        let fb = assign(
            TaggingScheme::FrequencyBased { percentile: 0.9 },
            &a,
            &mut rng,
        );
        assert!(
            count(&fb) <= count(&sl),
            "freq-based {} should not exceed service-level {}",
            count(&fb),
            count(&sl)
        );
    }

    #[test]
    fn coverage_skew_small_c1_fraction() {
        // Fig. 17c: a large share of requests from a small service subset.
        let a = app();
        let mut rng = StdRng::seed_from_u64(3);
        let tags = assign(
            TaggingScheme::FrequencyBased { percentile: 0.8 },
            &a,
            &mut rng,
        );
        let c1 = tags.iter().filter(|&&t| t == Criticality::C1).count();
        let frac = c1 as f64 / tags.len() as f64;
        assert!(frac < 0.35, "C1 fraction {frac} too large for 80% coverage");
    }

    #[test]
    fn rest_bucketed_by_cpm() {
        let a = app();
        let mut rng = StdRng::seed_from_u64(4);
        let tags = assign(
            TaggingScheme::ServiceLevel { percentile: 0.5 },
            &a,
            &mut rng,
        );
        let cpm = a.calls_per_minute();
        // Among non-C1 services, average CPM of C2s exceeds that of C9/C10s.
        let avg = |lo: u8, hi: u8| {
            let xs: Vec<f64> = (0..tags.len())
                .filter(|&i| (lo..=hi).contains(&tags[i].level()))
                .map(|i| cpm[i])
                .collect();
            if xs.is_empty() {
                None
            } else {
                Some(xs.iter().sum::<f64>() / xs.len() as f64)
            }
        };
        if let (Some(hot), Some(cold)) = (avg(2, 3), avg(9, 10)) {
            assert!(hot >= cold, "hot {hot} vs cold {cold}");
        }
    }

    #[test]
    fn stub_detection_matches_trace_stats() {
        let a = app();
        let stubs = single_upstream_stubs(&a);
        let frac = stubs.iter().filter(|&&s| s).count() as f64 / stubs.len() as f64;
        // The generator targets ≈74 % single-upstream for a top-4-style app.
        assert!((0.6..=0.9).contains(&frac), "stub fraction {frac}");
    }

    #[test]
    fn stubs_inherit_their_callers_criticality() {
        let a = app();
        let mut rng = StdRng::seed_from_u64(9);
        let tags = assign(
            TaggingScheme::ServiceLevel { percentile: 0.5 },
            &a,
            &mut rng,
        );
        let adjusted = inherit_stub_tags(&a, &tags);
        let stubs = single_upstream_stubs(&a);
        for n in a.graph.node_ids() {
            let i = n.index();
            if stubs[i] {
                let caller = a.graph.predecessors(n)[0];
                assert!(
                    !adjusted[i].is_at_least_as_critical_as(adjusted[caller.index()])
                        || adjusted[i] == adjusted[caller.index()],
                    "stub {i} ({}) outranks its only caller {} ({})",
                    adjusted[i],
                    caller.index(),
                    adjusted[caller.index()],
                );
            } else {
                assert_eq!(adjusted[i], tags[i], "non-stub {i} must not change");
            }
        }
        // Demotion only: no service becomes more critical.
        for (before, after) in tags.iter().zip(&adjusted) {
            assert!(after.level() >= before.level());
        }
    }

    #[test]
    fn stub_inheritance_preserves_c1_coverage() {
        let a = app();
        let mut rng = StdRng::seed_from_u64(10);
        for scheme in [
            TaggingScheme::ServiceLevel { percentile: 0.9 },
            TaggingScheme::FrequencyBased { percentile: 0.9 },
        ] {
            let tags = assign(scheme, &a, &mut rng);
            let adjusted = inherit_stub_tags(&a, &tags);
            // A demoted C1 stub had a non-C1 caller, so the templates it
            // served were not fully-C1 before either.
            assert!(
                c1_coverage(&a, &adjusted) >= c1_coverage(&a, &tags) - 1e-9,
                "{}",
                scheme.label()
            );
        }
    }

    #[test]
    fn labels() {
        assert_eq!(
            TaggingScheme::ServiceLevel { percentile: 0.9 }.label(),
            "Service-Level-P90"
        );
        assert_eq!(
            TaggingScheme::FrequencyBased { percentile: 0.5 }.label(),
            "Freq-Based-P50"
        );
    }
}
