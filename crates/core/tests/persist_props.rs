//! Property tests: arbitrary workloads survive the persistence round trip
//! bit-for-bit at the spec level.

use phoenix_cluster::Resources;
use phoenix_core::persist::{from_json, to_json};
use phoenix_core::spec::{AppSpecBuilder, ServiceId, Workload};
use phoenix_core::tags::Criticality;
use proptest::prelude::*;

fn arb_workload() -> impl Strategy<Value = Workload> {
    let app = (
        "[a-z]{1,12}",
        proptest::collection::vec(
            (
                0.1f64..32.0,
                0.0f64..64.0,
                proptest::option::of(1u8..10),
                1u16..4,
            ),
            1..15,
        ),
        proptest::collection::vec((0usize..15, 0usize..15), 0..20),
        0.1f64..10.0,
        proptest::bool::ANY,
        proptest::bool::ANY,
    )
        .prop_map(|(name, services, edges, price, enabled, with_graph)| {
            let mut b = AppSpecBuilder::new(name);
            let n = services.len();
            for (i, (cpu, mem, crit, replicas)) in services.into_iter().enumerate() {
                b.add_service(
                    format!("svc{i}"),
                    Resources::new(cpu, mem),
                    crit.map(Criticality::new),
                    replicas,
                );
            }
            if with_graph {
                b.with_graph();
                for (x, y) in edges {
                    if x != y && x < n && y < n {
                        b.add_dependency(ServiceId::new(x as u32), ServiceId::new(y as u32));
                    }
                }
            }
            b.price_per_unit(price);
            b.phoenix_enabled(enabled);
            b.build().expect("generated spec is valid")
        });
    proptest::collection::vec(app, 1..5).prop_map(Workload::new)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn json_round_trip_is_identity(w in arb_workload()) {
        let restored = from_json(&to_json(&w).unwrap()).unwrap();
        prop_assert_eq!(w.app_count(), restored.app_count());
        for (a, b) in w.apps().zip(restored.apps()) {
            let (a, b) = (a.1, b.1);
            prop_assert_eq!(a.name(), b.name());
            prop_assert_eq!(a.services(), b.services());
            prop_assert_eq!(a.price_per_unit(), b.price_per_unit());
            prop_assert_eq!(a.phoenix_enabled(), b.phoenix_enabled());
            match (a.dependency(), b.dependency()) {
                (None, None) => {}
                (Some(x), Some(y)) => {
                    prop_assert_eq!(
                        x.edges().collect::<Vec<_>>(),
                        y.edges().collect::<Vec<_>>()
                    );
                }
                other => prop_assert!(false, "dependency mismatch: {:?}", other.0.map(|g| g.edge_count())),
            }
        }
    }
}
