//! Adversarial scenario hunt: search for the failure scenarios each
//! policy handles worst, shrink every violation to a minimal repro, and
//! persist the repros into the always-on regression suite
//! (`crates/scenarios/regressions/`, replayed by
//! `scenarios/tests/regression_suite.rs`).
//!
//! Two passes:
//!
//! 1. **Baseline sweep** — the fixed-seed generator suite (the
//!    `scenario_matrix` shape) against the roster; the worst violating
//!    scenario per `(family, policy)` cell is shrunk and persisted as
//!    `{scenario}--{policy}.json`. This is what pins the known
//!    BENCH_planner violations (correlated-blast-radius/PhoenixCost,
//!    surge-under-crunch).
//! 2. **Hunt** — the evolutionary search of `phoenix_scenarios::search`,
//!    with the chaos crate's `scenario_audit` wired in as the secondary
//!    objective on severity ties; each policy's champion is shrunk and
//!    persisted as `hunt-{seed}--{policy}.json`.
//!
//! Flags:
//!
//! * `--smoke`        CI-sized hunt (default shape; 8 nodes, 30 candidates);
//! * `--full`         wider hunt (16 nodes, 48 candidates, full roster);
//! * `--seed N`       hunt seed (default 42);
//! * `--policy NAME`  restrict the roster to one policy;
//! * `--json FILE`    also write the hunt outcome + repro set as JSON;
//! * `--no-persist`   report only, leave `regressions/` untouched;
//! * `--out DIR`      persist somewhere other than the checked-in dir;
//! * `--utility-tiebreak`  break severity ties by the served-utility
//!   deficit on the modal demo workload instead of the chaos audit
//!   (default off, so seed-pinned regressions are unaffected);
//! * `--threads N`    pool workers (byte-identical output for any value).

use std::collections::BTreeMap;
use std::path::PathBuf;

use phoenix_apps::overleaf::{overleaf, OverleafVariant};
use phoenix_bench::{arg, flag, init_threads, Table};
use phoenix_chaos::scenario_chaos::scenario_audit;
use phoenix_core::policies::{DefaultPolicy, PhoenixPolicy, ResiliencePolicy};
use phoenix_kubesim::run::{SimConfig, SteadyState};
use phoenix_scenarios::campaign::{demo_workload, demo_workload_modal, CampaignConfig};
use phoenix_scenarios::generate::{generate_suite, GeneratorConfig};
use phoenix_scenarios::model::{ScenarioDoc, SuiteDoc};
use phoenix_scenarios::regression::{encode, regressions_dir, RegressionDoc};
use phoenix_scenarios::search::{
    run_hunt_with, signature_of_with, utility_deficit_objective, HuntConfig,
};
use phoenix_scenarios::shrink::shrink;

fn main() {
    let threads = init_threads();
    let full = flag("full");
    let seed: u64 = arg("seed", 42);
    let hunt = if full {
        HuntConfig::full(seed)
    } else {
        HuntConfig::smoke(seed)
    };
    let policy_filter: String = arg("policy", String::new());
    let mut policies: Vec<Box<dyn ResiliencePolicy>> = if full {
        phoenix_core::policies::standard_roster()
    } else {
        vec![
            Box::new(PhoenixPolicy::fair()),
            Box::new(PhoenixPolicy::cost()),
            Box::new(DefaultPolicy),
        ]
    };
    if !policy_filter.is_empty() {
        policies.retain(|p| p.name() == policy_filter);
        assert!(
            !policies.is_empty(),
            "no roster policy named {policy_filter}"
        );
    }
    let persist = !flag("no-persist");
    let out_dir: PathBuf = {
        let custom: String = arg("out", String::new());
        if custom.is_empty() {
            regressions_dir()
        } else {
            PathBuf::from(custom)
        }
    };

    let workload = demo_workload(hunt.apps);
    let cfg = CampaignConfig::default();
    eprintln!(
        "scenario hunt: seed {seed}, {} candidates x {} rounds, {} policies, {threads} thread(s)",
        hunt.population,
        hunt.rounds,
        policies.len(),
    );

    // Secondary objective on severity ties. Default: how badly the
    // scenario also hurts a *real* app graph under the chaos crate's
    // settle-for-good audit (unrecovered criticals dominate, then the
    // worst restore time). With --utility-tiebreak: the served-utility
    // deficit on the modal demo workload — scenarios that defeat
    // degraded serving, not just whole-pod availability.
    let utility_tiebreak = flag("utility-tiebreak");
    let modal_workload = demo_workload_modal(hunt.apps);
    let modal_policy = PhoenixPolicy::fair();
    let audit_model = overleaf("overleaf", OverleafVariant::Edits, 1.0);
    let audit_policy = PhoenixPolicy::fair();
    let audit_sim = SimConfig::default();
    let secondary = |doc: &ScenarioDoc| -> u64 {
        let mut d = doc.clone();
        // The audit runs a single-app workload; retarget surges onto it.
        for e in &mut d.events {
            if e.kind == "demand_surge" {
                e.app = 0;
            }
        }
        let suite = SuiteDoc {
            version: SuiteDoc::VERSION,
            seed: 0,
            scenarios: vec![d],
        };
        match scenario_audit(&audit_model, &audit_policy, &suite, &audit_sim) {
            Ok(cards) => cards
                .iter()
                .map(|c| {
                    u64::from(c.scenarios - c.critical_recovered) * 1_000_000
                        + c.worst_restore.map_or(0, |t| t.as_millis())
                })
                .sum(),
            Err(_) => 0,
        }
    };
    let utility_secondary = utility_deficit_objective(&modal_workload, &modal_policy, &cfg);
    let secondary_ref: &(dyn Fn(&ScenarioDoc) -> u64 + Sync) = if utility_tiebreak {
        &utility_secondary
    } else {
        &secondary
    };

    // The fixed-seed generator suite for pass 1 — generated up front so
    // the steady-state captures below can borrow its cluster shape.
    let suite = generate_suite(&GeneratorConfig {
        nodes: hunt.nodes,
        node_cpu: hunt.node_cpu,
        scenarios_per_family: if full { 8 } else { 5 },
        apps: hunt.apps,
        seed,
    });

    // Every scenario this bin evaluates — the baseline suite, shrink
    // candidates, hunt champions — shares the hunt's cluster shape, so
    // capture each policy's t = 0 steady state once and replay it through
    // every oracle evaluation. Shrunk docs that drop trailing nodes fall
    // back to a cold plan via the simulator's shape check.
    let steady: Vec<SteadyState> = {
        let caps = suite
            .scenarios
            .first()
            .and_then(|s| s.compile().ok())
            .map(|sc| sc.node_capacities)
            .unwrap_or_default();
        policies
            .iter()
            .map(|p| SteadyState::compute(&workload, p.as_ref(), &caps))
            .collect()
    };
    let steady_of = |policy: &dyn ResiliencePolicy| {
        policies
            .iter()
            .position(|p| p.name() == policy.name())
            .map(|i| &steady[i])
    };

    let mut repros: Vec<RegressionDoc> = Vec::new();
    let mut shrink_table = Table::new([
        "repro",
        "policy",
        "severity",
        "events",
        "horizon",
        "oracle_evals",
    ]);
    let mut capture = |doc: &ScenarioDoc, policy: &dyn ResiliencePolicy, origin: String| {
        let steady = steady_of(policy);
        let mut oracle = |d: &ScenarioDoc| {
            signature_of_with(&workload, d, policy, &cfg, steady)
                .map(|s| s.severity_ms > 0)
                .unwrap_or(false)
        };
        let (small, report) = shrink(doc, &mut oracle);
        let signature = signature_of_with(&workload, &small, policy, &cfg, steady)
            .expect("shrunk doc validates");
        assert!(signature.severity_ms > 0, "shrinker lost the violation");
        shrink_table.row([
            small.name.clone(),
            policy.name().to_string(),
            format!("{}ms", signature.severity_ms),
            format!("{}->{}", doc.events.len(), small.events.len()),
            format!("{}->{}s", doc.horizon_ms / 1000, small.horizon_ms / 1000),
            report.evals.to_string(),
        ]);
        repros.push(RegressionDoc {
            version: RegressionDoc::VERSION,
            name: format!("{}--{}", small.name, policy.name()),
            policy: policy.name().to_string(),
            apps: hunt.apps,
            origin,
            signature,
            scenario: small,
        });
    };

    // Pass 1: baseline sweep — worst violating scenario per
    // (family, policy) cell of the fixed-seed generator suite.
    let mut worst: BTreeMap<(String, String), (u64, usize)> = BTreeMap::new();
    for (si, s) in suite.scenarios.iter().enumerate() {
        for (pi, p) in policies.iter().enumerate() {
            let sig = signature_of_with(&workload, s, p.as_ref(), &cfg, Some(&steady[pi]))
                .expect("suite validates");
            if sig.severity_ms == 0 {
                continue;
            }
            let key = (s.family.clone(), p.name().to_string());
            let entry = worst.entry(key).or_insert((0, si));
            if sig.severity_ms > entry.0 {
                *entry = (sig.severity_ms, si);
            }
        }
    }
    for ((family, policy_name), (severity, si)) in &worst {
        let policy = policies
            .iter()
            .find(|p| p.name() == policy_name)
            .expect("policy came from the roster");
        eprintln!(
            "baseline violation: {family} x {policy_name} ({:.1}s) — shrinking",
            *severity as f64 / 1000.0
        );
        capture(
            &suite.scenarios[*si],
            policy.as_ref(),
            format!("baseline sweep seed {seed}"),
        );
    }

    // Pass 2: the hunt itself.
    let outcome = run_hunt_with(
        &workload,
        &policies,
        &hunt,
        &cfg,
        phoenix_exec::global(),
        Some(secondary_ref),
    );
    let mut hunt_table = Table::new([
        "policy",
        "round",
        "candidate",
        "severity",
        "outages",
        "violations",
        "secondary",
    ]);
    for c in &outcome.champions {
        hunt_table.row([
            c.policy.clone(),
            c.round.to_string(),
            c.candidate.to_string(),
            format!("{:.1}s", c.signature.severity_ms as f64 / 1000.0),
            c.signature.outages.to_string(),
            c.signature.violations.to_string(),
            c.secondary.map_or("-".to_string(), |s| s.to_string()),
        ]);
        let mut champion = c.doc.clone();
        champion.name = format!("hunt-{seed}");
        let policy = policies
            .iter()
            .find(|p| p.name() == c.policy)
            .expect("champion policy came from the roster");
        capture(
            &champion,
            policy.as_ref(),
            format!(
                "hunt seed {seed} round {} candidate {}",
                c.round, c.candidate
            ),
        );
    }
    hunt_table.print(&format!(
        "Hunt champions (seed {seed}, {} evaluations)",
        outcome.evaluations
    ));
    shrink_table.print("Minimal repros");

    assert!(
        !repros.is_empty(),
        "hunt found no violation — the seed-{seed} baselines moved"
    );

    if persist {
        std::fs::create_dir_all(&out_dir).expect("create regressions dir");
        for r in &repros {
            let path = out_dir.join(format!("{}.json", r.name));
            std::fs::write(&path, encode(r).expect("repro serializes")).expect("write repro");
            println!("persisted {}", path.display());
        }
    } else {
        println!("(--no-persist: {} repro(s) not written)", repros.len());
    }

    if let Some(path) = std::env::args()
        .collect::<Vec<_>>()
        .windows(2)
        .find(|w| w[0] == "--json")
        .map(|w| w[1].clone())
    {
        let outcome_json = serde_json::to_string_pretty(&outcome).expect("outcome serializes");
        let repro_json: Vec<String> = repros
            .iter()
            .map(|r| encode(r).expect("repro serializes"))
            .collect();
        let doc = format!(
            "{{\n\"outcome\": {outcome_json},\n\"repros\": [{}]\n}}\n",
            repro_json.join(",\n")
        );
        std::fs::write(&path, doc).expect("write json output");
        println!("wrote {path}");
    }
}
