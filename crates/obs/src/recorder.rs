//! The [`Recorder`] handle: deterministic counters + wall-clock phase
//! timers, a process-global install point, and JSON / Chrome-trace
//! export.

use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, RwLock};
use std::time::{Duration, Instant};

use crate::hist::{summarize, Summary};

/// Deterministic-plane counters: integer event counts that are pure
/// functions of the planner's inputs.
///
/// Adding a variant is additive — append it (order is the export order)
/// and give it a name in [`Counter::name`]. Every variant must satisfy
/// the plane's contract: the count may **never** depend on thread
/// scheduling, pool chunking, or a clock. Counts that derive from the
/// exec pool's chunk boundaries (which scale with the worker count) are
/// banned from this plane.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(usize)]
pub enum Counter {
    /// Cold `plan_with` pipeline runs.
    ColdPlans,
    /// Warm `ReplanCache` pipeline runs.
    WarmReplans,
    /// Per-app rank cache entries revalidated as reusable (fingerprint
    /// unchanged).
    ReplanCacheHits,
    /// Per-app rank cache entries invalidated (fingerprint changed or
    /// first sight) and recomputed.
    ReplanCacheMisses,
    /// Whole cached `GlobalRank`s reused because healthy-capacity bits
    /// matched.
    RankFullReuses,
    /// Global rankings rebuilt by replaying the cached merge order
    /// (capacity-invariant objectives).
    MergeOrderReplays,
    /// Global rankings rebuilt by replaying the share-keyed merge order
    /// (fair shares repeated bit-for-bit).
    ShareOrderReplays,
    /// Share vectors recomputed and invested into the one-round
    /// hysteresis cache.
    ShareInvestments,
    /// Global rankings rebuilt cold through the scoring heap merge.
    ColdMerges,
    /// Water-filling invocations (fair-share computation).
    WaterfillRuns,
    /// Degraded-serving rungs admitted by global ranking (`mode != Full`
    /// items — a rung "purchase" under crunch).
    RungPurchases,
    /// App chains retired at saturation (the ranking stopped buying an
    /// app's remaining rungs — the eviction side of the ladder).
    ChainRetirements,
    /// Pods placed by packing (sequential or sharded driver).
    PackPlacements,
    /// Per-shard fit proposals computed by the sharded freeze passes.
    PackShardProposals,
    /// Merge steps that consumed a frozen shard proposal unchanged.
    PackFrozenReuses,
    /// Merge steps that replayed a fit because a dirty shard invalidated
    /// the frozen proposal.
    PackDirtyReplays,
    /// Plan chunks whose pods were already converged (sharded driver
    /// skipped the freeze fan-out entirely).
    PackConvergentSkips,
    /// Victims deleted by delete-lower-ranks.
    PackVictimDeletes,
    /// Pods migrated by repack-to-fit.
    PackRepackMigrations,
    /// `ClusterState::snapshot` marks taken.
    StateSnapshots,
    /// `ClusterState::restore_to` rewinds performed.
    StateRestores,
    /// Journal entries undone across all restores (the O(Δ) work).
    JournalEntriesUndone,
    /// Deepest journal observed at restore time (a gauge: merged by
    /// maximum, not sum — still scheduling-invariant).
    JournalDepthMax,
    /// Simulator events processed by `kubesim::run`.
    SimEvents,
    /// Milestones recorded by the simulator.
    SimMilestones,
    /// In-run replans (`SimTrace::plans` pushes).
    SimPlans,
    /// `ModeShiftApplied` events (in-place serving-mode reconfigurations).
    SimModeShifts,
    /// `(scenario, policy)` campaign cells simulated.
    CampaignCells,
    /// AdaptLab sweep trials executed.
    SweepTrials,
    /// Adversarial hunt candidate evaluations.
    HuntEvaluations,
}

impl Counter {
    /// Every counter, in export order.
    pub const ALL: [Counter; 30] = [
        Counter::ColdPlans,
        Counter::WarmReplans,
        Counter::ReplanCacheHits,
        Counter::ReplanCacheMisses,
        Counter::RankFullReuses,
        Counter::MergeOrderReplays,
        Counter::ShareOrderReplays,
        Counter::ShareInvestments,
        Counter::ColdMerges,
        Counter::WaterfillRuns,
        Counter::RungPurchases,
        Counter::ChainRetirements,
        Counter::PackPlacements,
        Counter::PackShardProposals,
        Counter::PackFrozenReuses,
        Counter::PackDirtyReplays,
        Counter::PackConvergentSkips,
        Counter::PackVictimDeletes,
        Counter::PackRepackMigrations,
        Counter::StateSnapshots,
        Counter::StateRestores,
        Counter::JournalEntriesUndone,
        Counter::JournalDepthMax,
        Counter::SimEvents,
        Counter::SimMilestones,
        Counter::SimPlans,
        Counter::SimModeShifts,
        Counter::CampaignCells,
        Counter::SweepTrials,
        Counter::HuntEvaluations,
    ];

    /// Stable snake_case name used in exports and the determinism probe.
    pub fn name(self) -> &'static str {
        match self {
            Counter::ColdPlans => "cold_plans",
            Counter::WarmReplans => "warm_replans",
            Counter::ReplanCacheHits => "replan_cache_hits",
            Counter::ReplanCacheMisses => "replan_cache_misses",
            Counter::RankFullReuses => "rank_full_reuses",
            Counter::MergeOrderReplays => "merge_order_replays",
            Counter::ShareOrderReplays => "share_order_replays",
            Counter::ShareInvestments => "share_investments",
            Counter::ColdMerges => "cold_merges",
            Counter::WaterfillRuns => "waterfill_runs",
            Counter::RungPurchases => "rung_purchases",
            Counter::ChainRetirements => "chain_retirements",
            Counter::PackPlacements => "pack_placements",
            Counter::PackShardProposals => "pack_shard_proposals",
            Counter::PackFrozenReuses => "pack_frozen_reuses",
            Counter::PackDirtyReplays => "pack_dirty_replays",
            Counter::PackConvergentSkips => "pack_convergent_skips",
            Counter::PackVictimDeletes => "pack_victim_deletes",
            Counter::PackRepackMigrations => "pack_repack_migrations",
            Counter::StateSnapshots => "state_snapshots",
            Counter::StateRestores => "state_restores",
            Counter::JournalEntriesUndone => "journal_entries_undone",
            Counter::JournalDepthMax => "journal_depth_max",
            Counter::SimEvents => "sim_events",
            Counter::SimMilestones => "sim_milestones",
            Counter::SimPlans => "sim_plans",
            Counter::SimModeShifts => "sim_mode_shifts",
            Counter::CampaignCells => "campaign_cells",
            Counter::SweepTrials => "sweep_trials",
            Counter::HuntEvaluations => "hunt_evaluations",
        }
    }
}

/// Wall-clock-plane phases: scoped timers over the pipeline's stages.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(usize)]
pub enum Phase {
    /// Planner section of a cold/warm plan: per-app ranks + global
    /// ranking.
    Rank,
    /// Water-filling fair-share computation.
    Waterfill,
    /// Scheduler section: packing + action diff.
    Pack,
    /// Ordered merge of sharded fit proposals.
    Merge,
    /// One simulated monitor-tick replan (`PlanResult::planning_time`).
    Replan,
}

impl Phase {
    /// Every phase, in export order.
    pub const ALL: [Phase; 5] = [
        Phase::Rank,
        Phase::Waterfill,
        Phase::Pack,
        Phase::Merge,
        Phase::Replan,
    ];

    /// Stable snake_case name used in exports and trace spans.
    pub fn name(self) -> &'static str {
        match self {
            Phase::Rank => "rank",
            Phase::Waterfill => "waterfill",
            Phase::Pack => "pack",
            Phase::Merge => "merge",
            Phase::Replan => "replan",
        }
    }
}

/// One completed wall-clock span, for Chrome trace export.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Span {
    phase: Phase,
    /// Offset from the recorder's epoch, µs.
    start_us: u64,
    dur_us: u64,
    /// Dense per-recorder thread index (trace rows), not an OS id.
    tid: u32,
}

/// The wall-clock plane: per-phase duration samples plus trace spans.
#[derive(Debug, Default)]
struct WallPlane {
    samples: [Vec<u64>; Phase::ALL.len()],
    spans: Vec<Span>,
}

#[derive(Debug)]
struct Inner {
    /// Trace epoch: span timestamps are offsets from here.
    epoch: Instant,
    counters: [AtomicU64; Counter::ALL.len()],
    wall: Mutex<WallPlane>,
    /// Next dense thread index for trace rows.
    next_tid: AtomicU32,
}

thread_local! {
    /// This thread's dense trace row per recorder generation. Keyed by
    /// the `next_tid` allocator's address-free generation: one recorder
    /// per process at a time is the supported shape, so a plain cached
    /// index is enough.
    static TRACE_TID: std::cell::Cell<Option<u32>> = const { std::cell::Cell::new(None) };
}

impl Inner {
    fn new() -> Inner {
        Inner {
            epoch: Instant::now(),
            counters: std::array::from_fn(|_| AtomicU64::new(0)),
            wall: Mutex::new(WallPlane::default()),
            next_tid: AtomicU32::new(1),
        }
    }

    fn tid(&self) -> u32 {
        TRACE_TID.with(|c| match c.get() {
            Some(t) => t,
            None => {
                let t = self.next_tid.fetch_add(1, Ordering::Relaxed);
                c.set(Some(t));
                t
            }
        })
    }
}

/// A cheap-to-clone handle into the observability planes.
///
/// The default ([`Recorder::disabled`]) handle records nothing: every
/// operation is a branch on `None`, and the phase-timer guard never
/// reads the clock. An enabled handle shares one [`Arc`]'d store across
/// clones, so the planner, packing, and simulator all report into the
/// same snapshot.
#[derive(Debug, Clone, Default)]
pub struct Recorder(Option<Arc<Inner>>);

impl Recorder {
    /// The no-op recorder (the process default).
    pub fn disabled() -> Recorder {
        Recorder(None)
    }

    /// A fresh enabled recorder with zeroed planes.
    pub fn enabled() -> Recorder {
        Recorder(Some(Arc::new(Inner::new())))
    }

    /// `true` when this handle records anything.
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Increments `counter` by one (deterministic plane).
    #[inline]
    pub fn incr(&self, counter: Counter) {
        self.add(counter, 1);
    }

    /// Adds `n` to `counter` (deterministic plane). Sums are
    /// commutative, so the total is identical under any scheduling of
    /// the same events.
    #[inline]
    pub fn add(&self, counter: Counter, n: u64) {
        if let Some(inner) = &self.0 {
            inner.counters[counter as usize].fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Raises `counter` to at least `value` (deterministic plane, gauge
    /// semantics). Max is commutative, so still scheduling-invariant.
    #[inline]
    pub fn gauge_max(&self, counter: Counter, value: u64) {
        if let Some(inner) = &self.0 {
            inner.counters[counter as usize].fetch_max(value, Ordering::Relaxed);
        }
    }

    /// Current value of `counter`.
    pub fn counter(&self, counter: Counter) -> u64 {
        match &self.0 {
            Some(inner) => inner.counters[counter as usize].load(Ordering::Relaxed),
            None => 0,
        }
    }

    /// `(name, value)` for every counter, in [`Counter::ALL`] order
    /// (zeros included, so the shape of the output is input-independent).
    pub fn counters(&self) -> Vec<(&'static str, u64)> {
        Counter::ALL
            .iter()
            .map(|&c| (c.name(), self.counter(c)))
            .collect()
    }

    /// Starts a scoped wall-clock timer for `phase`; the elapsed time is
    /// recorded (histogram sample + trace span) when the guard drops.
    /// Disabled recorders never read the clock.
    #[inline]
    pub fn phase(&self, phase: Phase) -> PhaseGuard<'_> {
        PhaseGuard {
            live: self.0.as_deref().map(|inner| (inner, Instant::now())),
            phase,
        }
    }

    /// Records an externally measured duration for `phase` (histogram
    /// only, no trace span) — e.g. the simulator feeding each
    /// `PlanResult::planning_time` into the replan-latency histogram.
    pub fn record_duration(&self, phase: Phase, d: Duration) {
        if let Some(inner) = &self.0 {
            let mut wall = inner.wall.lock().expect("wall plane lock");
            wall.samples[phase as usize].push(duration_us(d));
        }
    }

    /// Nearest-rank summary of `phase`'s samples (`None` when the phase
    /// never fired or the recorder is disabled).
    pub fn phase_summary(&self, phase: Phase) -> Option<Summary> {
        let inner = self.0.as_deref()?;
        let wall = inner.wall.lock().expect("wall plane lock");
        summarize(&wall.samples[phase as usize])
    }

    /// Zeroes both planes (counters, samples, spans). Used between probe
    /// sections; clones sharing the store observe the reset.
    pub fn reset(&self) {
        if let Some(inner) = &self.0 {
            for c in &inner.counters {
                c.store(0, Ordering::Relaxed);
            }
            let mut wall = inner.wall.lock().expect("wall plane lock");
            wall.samples = Default::default();
            wall.spans.clear();
        }
    }

    /// Exports both planes as a JSON object.
    ///
    /// The deterministic plane is under `"deterministic"` (counter name →
    /// value, [`Counter::ALL`] order); the wall-clock plane is under
    /// `"wall_clock"` with the mandatory `host_cpus`/`threads` honesty
    /// tags, per-phase nearest-rank summaries, and the span count.
    /// Hand-rolled (this crate has no deps); keys never need escaping.
    pub fn snapshot_json(&self, threads: usize, host_cpus: usize) -> String {
        let mut out = String::new();
        out.push_str("{\n  \"obs\": \"phoenix-obs\",\n  \"schema_version\": 1,\n");
        out.push_str("  \"deterministic\": {\n");
        let counters = self.counters();
        for (i, (name, value)) in counters.iter().enumerate() {
            let comma = if i + 1 == counters.len() { "" } else { "," };
            out.push_str(&format!("    \"{name}\": {value}{comma}\n"));
        }
        out.push_str("  },\n");
        out.push_str("  \"wall_clock\": {\n");
        out.push_str(&format!("    \"threads\": {threads},\n"));
        out.push_str(&format!("    \"host_cpus\": {host_cpus},\n"));
        out.push_str("    \"note\": \"wall-clock plane: quarantined from determinism checks; parallel speedups are only meaningful when host_cpus > 1\",\n");
        out.push_str("    \"phases\": [\n");
        let mut rows = Vec::new();
        for &p in &Phase::ALL {
            if let Some(s) = self.phase_summary(p) {
                rows.push(format!(
                    "      {{\"phase\": \"{}\", \"count\": {}, \"min_us\": {}, \"p50_us\": {}, \"p95_us\": {}, \"p99_us\": {}, \"max_us\": {}}}",
                    p.name(),
                    s.count,
                    s.min_us,
                    s.p50_us,
                    s.p95_us,
                    s.p99_us,
                    s.max_us,
                ));
            }
        }
        out.push_str(&rows.join(",\n"));
        if !rows.is_empty() {
            out.push('\n');
        }
        out.push_str("    ],\n");
        let spans = match &self.0 {
            Some(inner) => inner.wall.lock().expect("wall plane lock").spans.len(),
            None => 0,
        };
        out.push_str(&format!("    \"spans\": {spans}\n"));
        out.push_str("  }\n}\n");
        out
    }

    /// Exports the recorded spans as a Chrome trace-event JSON array
    /// (loadable in Perfetto / `chrome://tracing`). Wall-clock plane
    /// only — span timestamps and row assignment are scheduling truth,
    /// not determinism-checked output.
    pub fn chrome_trace_json(&self) -> String {
        let mut out = String::from("[\n");
        if let Some(inner) = &self.0 {
            let wall = inner.wall.lock().expect("wall plane lock");
            let rows: Vec<String> = wall
                .spans
                .iter()
                .map(|s| {
                    format!(
                        "  {{\"name\": \"{}\", \"cat\": \"phoenix\", \"ph\": \"X\", \"pid\": 1, \"tid\": {}, \"ts\": {}, \"dur\": {}}}",
                        s.phase.name(),
                        s.tid,
                        s.start_us,
                        s.dur_us,
                    )
                })
                .collect();
            out.push_str(&rows.join(",\n"));
            if !rows.is_empty() {
                out.push('\n');
            }
        }
        out.push_str("]\n");
        out
    }
}

fn duration_us(d: Duration) -> u64 {
    u64::try_from(d.as_micros()).unwrap_or(u64::MAX)
}

/// Scoped timer returned by [`Recorder::phase`]; records on drop.
#[derive(Debug)]
pub struct PhaseGuard<'a> {
    live: Option<(&'a Inner, Instant)>,
    phase: Phase,
}

impl Drop for PhaseGuard<'_> {
    fn drop(&mut self) {
        if let Some((inner, started)) = self.live.take() {
            let dur_us = duration_us(started.elapsed());
            let start_us = duration_us(started.duration_since(inner.epoch));
            let tid = inner.tid();
            let mut wall = inner.wall.lock().expect("wall plane lock");
            wall.samples[self.phase as usize].push(dur_us);
            wall.spans.push(Span {
                phase: self.phase,
                start_us,
                dur_us,
                tid,
            });
        }
    }
}

/// Fast-path gate: instrumented code checks one relaxed bool before
/// touching the `RwLock` behind [`global`].
static ENABLED: AtomicBool = AtomicBool::new(false);
static GLOBAL: RwLock<Recorder> = RwLock::new(Recorder(None));
/// Serializes [`install_scoped`] users within one process (tests).
static SCOPE: Mutex<()> = Mutex::new(());

/// The process-global recorder handle. Disabled unless something
/// [`install`]ed an enabled recorder; entry points grab it once per
/// call, so the disabled cost is one relaxed load.
pub fn global() -> Recorder {
    if !ENABLED.load(Ordering::Relaxed) {
        return Recorder::disabled();
    }
    GLOBAL.read().expect("global recorder lock").clone()
}

/// Installs `recorder` as the process-global handle, returning the
/// previous one. Bins install once at startup; tests should prefer
/// [`install_scoped`].
pub fn install(recorder: Recorder) -> Recorder {
    let mut g = GLOBAL.write().expect("global recorder lock");
    ENABLED.store(recorder.is_enabled(), Ordering::Relaxed);
    std::mem::replace(&mut *g, recorder)
}

/// An [`install_scoped`] lease: restores the previous global recorder
/// (and releases the scope lock) on drop.
#[derive(Debug)]
pub struct Installed {
    prev: Option<Recorder>,
    _scope: MutexGuard<'static, ()>,
}

impl Drop for Installed {
    fn drop(&mut self) {
        if let Some(prev) = self.prev.take() {
            install(prev);
        }
    }
}

/// Installs `recorder` for the lifetime of the returned guard and
/// serializes against every other `install_scoped` in the process —
/// tests that assert on global counters must use this, or concurrent
/// tests in the same binary would pollute each other's counts.
pub fn install_scoped(recorder: Recorder) -> Installed {
    let scope = SCOPE
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner());
    let prev = install(recorder);
    Installed {
        prev: Some(prev),
        _scope: scope,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_is_inert() {
        let r = Recorder::disabled();
        r.incr(Counter::ColdPlans);
        r.add(Counter::SimEvents, 10);
        r.gauge_max(Counter::JournalDepthMax, 99);
        r.record_duration(Phase::Replan, Duration::from_millis(5));
        drop(r.phase(Phase::Rank));
        assert!(!r.is_enabled());
        assert_eq!(r.counter(Counter::ColdPlans), 0);
        assert_eq!(r.phase_summary(Phase::Rank), None);
        assert!(r.counters().iter().all(|&(_, v)| v == 0));
        assert_eq!(r.chrome_trace_json(), "[\n]\n");
    }

    #[test]
    fn counters_sum_and_gauge_maxes() {
        let r = Recorder::enabled();
        let clone = r.clone();
        r.incr(Counter::PackPlacements);
        clone.add(Counter::PackPlacements, 2);
        r.gauge_max(Counter::JournalDepthMax, 5);
        r.gauge_max(Counter::JournalDepthMax, 3);
        assert_eq!(r.counter(Counter::PackPlacements), 3);
        assert_eq!(r.counter(Counter::JournalDepthMax), 5);
        r.reset();
        assert_eq!(clone.counter(Counter::PackPlacements), 0);
    }

    #[test]
    fn phase_guard_records_samples_and_spans() {
        let r = Recorder::enabled();
        drop(r.phase(Phase::Rank));
        drop(r.phase(Phase::Rank));
        r.record_duration(Phase::Replan, Duration::from_micros(7));
        let s = r.phase_summary(Phase::Rank).expect("two samples");
        assert_eq!(s.count, 2);
        assert_eq!(r.phase_summary(Phase::Replan).expect("one").p99_us, 7);
        assert_eq!(r.phase_summary(Phase::Pack), None);
        // Two spans from the guards; record_duration adds none.
        let trace = r.chrome_trace_json();
        assert_eq!(trace.matches("\"ph\": \"X\"").count(), 2);
        assert!(trace.starts_with("[\n"));
        assert!(trace.trim_end().ends_with(']'));
    }

    #[test]
    fn snapshot_json_lists_every_counter_in_order() {
        let r = Recorder::enabled();
        r.incr(Counter::ColdPlans);
        let json = r.snapshot_json(4, 1);
        for &c in &Counter::ALL {
            assert!(
                json.contains(&format!("\"{}\"", c.name())),
                "missing {}",
                c.name()
            );
        }
        assert!(json.contains("\"cold_plans\": 1"));
        assert!(json.contains("\"threads\": 4"));
        assert!(json.contains("\"host_cpus\": 1"));
        // Deterministic plane precedes the wall-clock plane.
        let det = json.find("\"deterministic\"").expect("plane key");
        let wall = json.find("\"wall_clock\"").expect("plane key");
        assert!(det < wall);
    }

    #[test]
    fn install_scoped_restores_previous() {
        let outer = Recorder::enabled();
        {
            let _lease = install_scoped(outer.clone());
            global().incr(Counter::HuntEvaluations);
            assert_eq!(outer.counter(Counter::HuntEvaluations), 1);
        }
        // After the lease drops the previous (disabled) global is back.
        global().incr(Counter::HuntEvaluations);
        assert_eq!(outer.counter(Counter::HuntEvaluations), 1);
    }

    #[test]
    fn counter_names_are_unique() {
        let mut names: Vec<_> = Counter::ALL.iter().map(|c| c.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Counter::ALL.len());
    }
}
